"""The compiled flat-core engine backend.

A second, drop-in implementation of the :class:`~repro.sim.engine.Engine`
run surface, selected through the backend registry in :mod:`repro.sim.run`
(``backend="flat"``).  Semantics are tick-exact identical to the object
backend — same delivery order, same transcripts, same metrics, same tick
counts (the differential parity suite enforces it) — but the hot loop runs
on dense integer tables instead of Python object graphs:

* the wiring is lowered once per *wiring* into CSR-style arrays, resolved
  through the two-tier :func:`repro.topology.compile.compiled_topology`
  cache — a process-wide LRU in front of the optional on-disk artifact
  library (:mod:`repro.store.artifacts`), whose ``mmap``-loaded tables
  this engine consumes zero-copy — so an emission resolves its wire with
  two integer indexings instead of a dict lookup, and a warm library
  means no process ever compiles the same wiring twice;
* the character alphabet is interned up front
  (:class:`~repro.sim.characters.CharInterner`) — every character is a
  small integer code with one canonical :class:`~repro.sim.characters.Char`
  instance, so the wheel stores plain ints and delivery never allocates;
* the event wheel (:class:`PackedEventWheel`) replaces the object wheel's
  per-character tuples with ring-recycled ``array('q')`` lanes of packed
  64-bit entries.  The precomputed kind-priority rides in the top bits::

      bit 56..57   in-tick handling priority (KIND_PRIORITY of the code)
      bit 40..55   arrival in-port
      bit 20..39   per-tick sequence number (FIFO tie-break)
      bit  0..19   character code

  so one plain integer sort of a node's lane recovers the deterministic
  in-tick handling order (priority, then in-port, then FIFO) — the exact
  order the object wheel's tuple sort produces;
* per-kind traffic counters and per-node handler dispatch become
  code-indexed flat lists, flushed back into the shared
  :class:`~repro.sim.metrics.TrafficMetrics` shape on read.

Delivery timing, fast-forward (:meth:`Engine._advance` is inherited
unchanged), outbox residence and KILL purge semantics are all reused from
the base engine — this module replaces only the data plane.
"""

from __future__ import annotations

from array import array
from typing import Iterator

from repro.errors import SimulationError
from repro.sim.characters import (
    GROWING_KINDS,
    STAR,
    Char,
    CharInterner,
    dying_phase,
    growing_esc_phase,
    interner_for,
    is_growing,
    kernel_for,
)
from repro.sim.engine import Engine
from repro.sim.metrics import TrafficMetrics
from repro.sim.processor import Processor
from repro.sim.scheduler import KIND_PRIORITY
from repro.topology.compile import compiled_topology
from repro.topology.portgraph import PortGraph

__all__ = [
    "CODE_BITS",
    "CODE_MASK",
    "SEQ_SHIFT",
    "SEQ_BITS",
    "PORT_SHIFT",
    "PORT_MASK",
    "PRIO_SHIFT",
    "PackedEventWheel",
    "FlatEngine",
]

#: Packed-entry layout.  20 code bits cover the constant alphabet for any
#: realistic degree bound (delta ≈ 280 before overflow); 20 sequence bits
#: bound one tick at ~1M arrivals — far above the N * delta wire limit.
CODE_BITS = 20
CODE_MASK = (1 << CODE_BITS) - 1
SEQ_SHIFT = CODE_BITS
SEQ_BITS = 20
PORT_SHIFT = SEQ_SHIFT + SEQ_BITS
PORT_MASK = (1 << 16) - 1
PRIO_SHIFT = PORT_SHIFT + 16


class _Bucket:
    """One tick's arrivals: per-node packed lanes, recycled tick over tick.

    The FIFO tie-break needs no explicit counter: entries append to one
    lane in schedule order, so ``len(lane)`` at append time *is* the
    within-lane sequence number.
    """

    __slots__ = ("nodes", "lanes")

    def __init__(self) -> None:
        self.nodes: list[int] = []            # first-touch order, like dict order
        self.lanes: dict[int, array] = {}     # node -> array('q') of packed entries

    def clear(self) -> None:
        # only the touched lanes need clearing: "listed in nodes ⟺ lane
        # non-empty" is the bucket invariant
        lanes = self.lanes
        for node in self.nodes:
            del lanes[node][:]
        self.nodes.clear()


class PackedEventWheel:
    """Timestamp-bucketed delivery queue over packed integer entries.

    Drop-in for the object backend's :class:`~repro.sim.scheduler.EventWheel`
    query surface (``next_tick`` / ``__bool__`` / ``__len__`` /
    ``in_flight``), but ``schedule`` encodes the character through the
    interner and appends one packed int to the destination node's
    ``array('q')`` lane, and ``pop`` hands the whole bucket back for
    zero-copy delivery.  Buckets (and their lanes) are recycled through a
    free ring via :meth:`recycle` instead of being reallocated per tick.
    """

    __slots__ = (
        "interner",
        "chars",
        "base_of",
        "id_base",
        "_buckets",
        "_ticks",
        "_ring",
    )

    def __init__(self, interner: CharInterner) -> None:
        self.interner = interner
        self.chars = interner.chars
        # The two encode maps are pure append-only functions of the
        # interner's chars list, so every wheel over the same interner
        # shares one copy (cached on the interner) instead of rebuilding
        # both dicts per engine construction.
        maps = interner.derived.get("wheel_maps")
        if maps is None:
            #: value -> packed (priority << PRIO_SHIFT) | code.  Folding the
            #: priority in here is what makes a schedule a single dict hit.
            base_of: dict[Char, int] = {
                char: (KIND_PRIORITY[char.kind] << PRIO_SHIFT) | code
                for code, char in enumerate(interner.chars)
            }
            #: id(canonical instance) -> base.  Identity fast path: most
            #: traffic is canonical instances flowing back out of the wheel
            #: (flood relays re-broadcast the delivered character), and id()
            #: of a permanently-alive canonical is a safe key.
            id_base: dict[int, int] = {
                id(char): base for char, base in base_of.items()
            }
            maps = interner.derived["wheel_maps"] = (base_of, id_base)
        self.base_of, self.id_base = maps
        self._buckets: dict[int, _Bucket] = {}
        self._ticks: list[int] = []   # sorted ascending; popped from the front
        self._ring: list[_Bucket] = []

    # ------------------------------------------------------------------
    def encode_base(self, char: Char) -> int:
        """``(priority << PRIO_SHIFT) | code`` for ``char`` (interns new)."""
        base = self.base_of.get(char)
        if base is None:
            code = self.interner.encode(char)
            base = (KIND_PRIORITY[char.kind] << PRIO_SHIFT) | code
            self.base_of[char] = base
            # the canonical instance is immortal (the interner holds it),
            # so its identity is a safe fast-path key
            self.id_base[id(self.chars[code])] = base
        return base

    def schedule(self, tick: int, node: int, in_port: int, char: Char) -> None:
        """File ``char`` for delivery at ``tick`` through ``in_port``."""
        # hot path: every self.* used more than once is bound to a local
        buckets = self._buckets
        bucket = buckets.get(tick)
        if bucket is None:
            ring = self._ring
            bucket = ring.pop() if ring else _Bucket()
            buckets[tick] = bucket
            ticks = self._ticks
            ticks.append(tick)
            if len(ticks) > 1 and tick < ticks[-2]:
                ticks.sort()
        lanes = bucket.lanes
        lane = lanes.get(node)
        if lane is None:
            lane = lanes[node] = array("q")
            bucket.nodes.append(node)
        elif not lane:
            bucket.nodes.append(node)
        lane.append(
            self.encode_base(char)
            | (in_port << PORT_SHIFT)
            | (len(lane) << SEQ_SHIFT)
        )

    def pop(self, tick: int) -> _Bucket | None:
        """Remove and return the arrivals bucket for ``tick`` (or ``None``).

        The caller owns the bucket until it hands it back via
        :meth:`recycle`; a bucket that is never recycled is simply garbage
        collected (slow paths and tests need no discipline).
        """
        return self._buckets.pop(tick, None)

    def clear(self) -> None:
        """Empty the wheel in place, preserving container identity.

        Engine reuse requires clearing rather than replacing: the flat
        engine's send-time sink closures captured ``_buckets``, ``_ticks``
        and ``_ring`` at install time, so those exact objects must survive
        a reset (``_ticks`` is emptied via slice-delete, never rebound).
        Recycled buckets stay in the free ring for the next run.
        """
        buckets = self._buckets
        ring = self._ring
        for bucket in buckets.values():
            bucket.clear()
            ring.append(bucket)
        buckets.clear()
        del self._ticks[:]

    def recycle(self, bucket: _Bucket) -> None:
        """Clear a delivered bucket and return it to the free ring."""
        bucket.clear()
        self._ring.append(bucket)

    def next_tick(self) -> int | None:
        """The earliest tick holding scheduled arrivals, or ``None``."""
        ticks = self._ticks
        buckets = self._buckets
        while ticks and ticks[0] not in buckets:
            ticks.pop(0)
        return ticks[0] if ticks else None

    def __bool__(self) -> bool:
        return bool(self._buckets)

    def __len__(self) -> int:
        return sum(
            len(lane)
            for bucket in self._buckets.values()
            for lane in bucket.lanes.values()
        )

    def in_flight(self) -> Iterator[tuple[int, Char]]:
        """All scheduled characters as ``(destination, char)`` pairs."""
        chars = self.chars
        for bucket in self._buckets.values():
            for node in bucket.nodes:
                for packed in bucket.lanes[node]:
                    yield node, chars[packed & CODE_MASK]


class FlatEngine(Engine):
    """The compiled flat-core backend: same contract, dense data plane.

    Construction resolves the frozen graph's CSR tables and the constant
    alphabet through the process-wide caches
    (:func:`repro.topology.compile.compiled_topology`,
    :func:`repro.sim.characters.interner_for`) — both artifacts are pure
    functions of (wiring, delta), so every engine over the same network
    shares one copy instead of re-lowering them — swaps the event wheel
    for :class:`PackedEventWheel`, and lowers each processor's per-kind
    handler table into a code-indexed list.  Everything above the data
    plane — fast-forward, run/drain orchestration, wake and invariant
    hooks — is inherited from :class:`~repro.sim.engine.Engine` unchanged.
    """

    #: Subclasses that patch the compiled wire tables in place (the dynamic
    #: engines) set this True; construction then works on a private
    #: :meth:`~repro.topology.compile.CompiledTopology.fork` so the shared
    #: cached artifact stays pristine for every other engine.
    MUTATES_TOPOLOGY = False

    #: the flat hot loop dispatches on character codes; the per-kind object
    #: tables are resolved per node on first fallback use (see Engine)
    EAGER_DISPATCH = False

    #: The transition-table stepper: nodes whose processor declares
    #: ``TABLE_AUTOMATON`` have their deliveries resolved by one indexed
    #: load into :attr:`CharKernel.trans_rows` — drop, inline emission, or
    #: escape — instead of calling a handler closure per event.  A
    #: benchmark control subclass sets this False to measure the
    #: closure-dispatch path on an otherwise identical engine.
    TABLE_WALK = True

    def __init__(
        self,
        graph: PortGraph,
        processors: list[Processor],
        root: int = 0,
        *,
        record_transcript: bool = True,
    ) -> None:
        super().__init__(
            graph, processors, root=root, record_transcript=record_transcript
        )
        topo = compiled_topology(graph)
        self._topo = topo.fork() if self.MUTATES_TOPOLOGY else topo
        self._interner = interner_for(graph.delta)
        self._wheel = PackedEventWheel(self._interner)
        self._id_base = self._wheel.id_base
        self._chars = self._interner.chars
        self._emitted_by_code: list[int] = []
        # Two more pure functions of the interner's chars list, shared by
        # every engine at this delta through the interner's derived-table
        # cache (both only ever append, in code order):
        derived = self._interner.derived
        # code -> whether the character is a growing-snake kind (the only
        # purgeable class under the PURGES_ONLY_GROWING contract)
        growing = derived.get("growing_code")
        if growing is None:
            growing = derived["growing_code"] = []
        self._growing_code: list[bool] = growing
        # code -> None, or an in-port-indexed list of the canonical filled
        # characters: the §2.3.2 "change the * to j" rule applied once per
        # (character, arrival port) pair instead of allocating per arrival.
        fill = derived.get("fill_table")
        if fill is None:
            fill = derived["fill_table"] = []
        self._fill_table: list[list[Char] | None] = fill
        # node -> code-indexed handler list (None = fall back to .handle),
        # resolved lazily on a node's first object-path delivery: with code
        # dispatch in front, most nodes never need one.
        self._code_handlers: list[list | None] = [None] * len(processors)
        self._kind_tables: list[dict | None] = [None] * len(processors)
        self._grow_code_tables()
        # Per-slot precomputed (in_port << PORT_SHIFT) — ready-made ints, so
        # the hot loops do one list indexing instead of a shift per entry.
        # The table is immutable protocol data derived from the wiring, so
        # static engines alias the per-artifact shared copy; only engines
        # that patch the wiring mid-run need a private mutable list.
        shared_in_shift = self._topo.shifted_in_ports(PORT_SHIFT)
        self._in_shift = (
            list(shared_in_shift) if self.MUTATES_TOPOLOGY else shared_in_shift
        )
        # A subclass that intercepts emissions by overriding _put_on_wire
        # forfeits the fused drain loop and send-time sinks: every entry
        # must route through its override.  FlatDynamicEngine deliberately
        # does NOT override it — it patches the compiled tables in place
        # and handles cut slots via _blocked_emission (plus per-node sink
        # parking while a node's own out-wiring is degraded), which is what
        # keeps dynamic runs on this fast path.
        self._fused_drain = type(self)._put_on_wire is FlatEngine._put_on_wire
        #: node -> (sink, broadcast, purge) closures, kept so a reset can
        #: re-install the very same objects (they memoize per-node state
        #: and the dynamic engine parks/restores them by identity)
        self._fast_paths: dict[int, tuple] = {}
        if self._fused_drain:
            for node, proc in enumerate(processors):
                if node != root and proc.PURGES_ONLY_GROWING:
                    paths = (
                        self._make_direct_sink(node),
                        self._make_broadcast_sink(node),
                        self._make_purge_hook(node),
                    )
                    self._fast_paths[node] = paths
                    proc._direct_sink, proc._direct_broadcast, proc._purge_hook = paths
        # ---- the code-space kernel (compile-time character algebra) ----
        # Every character operation the hot loop needs — fill, role, family,
        # priority — is a pure function on the Lemma 5.2 census, precomputed
        # by the CharKernel into dense tables whose codes coincide with the
        # interner's (the interner is seeded from the kernel).  Per-node
        # code handlers dispatch on those small ints and emit through the
        # code sinks below, so a hot delivery never touches a Char object.
        self._kernel = kernel = kernel_for(graph.delta)
        self._kernel_fill = kernel.fill_rows          # per-code rows, len delta+1
        # code -> (priority << PRIO_SHIFT) | code: the packed-entry base,
        # table-indexed instead of dict-looked-up on the code fast path
        self._code_base = [
            (prio << PRIO_SHIFT) | code for code, prio in enumerate(kernel.prio_list)
        ]
        #: node -> code-indexed list of code-space handlers, or None (object
        #: path).  Only nodes on the send-time fast path qualify — the code
        #: sinks schedule at send time, which is exactly the
        #: PURGES_ONLY_GROWING licence the direct sinks already require.
        #: The code loop inlines ``begin_tick`` as a plain attribute store,
        #: so an override of it also disqualifies a processor.
        base_begin = Processor.begin_tick
        self._chandlers_all: list[list | None] = [None] * len(processors)
        for node in self._fast_paths:
            proc = processors[node]
            if type(proc).begin_tick is not base_begin:
                continue
            self._chandlers_all[node] = proc.code_handler_table(
                kernel,
                self._chars,
                self._make_code_sink(node),
                self._make_code_broadcast(node),
            )
        #: the live view: the dynamic engine parks a degraded node's entry
        #: (sets it None) and restores it, mirroring its sink parking
        self._chandlers: list[list | None] = list(self._chandlers_all)
        # ---- the table-walked automaton -------------------------------
        # Shadow phase registers, 6 per node (one per snake-family bank):
        # each is the node's GrowingMarks / DyingRelay state for that bank
        # expressed as an index into the kernel's transition rows.  A
        # delivery at a table-walked node is then one row lookup — 0 drops,
        # a positive row emits inline through the node's precompiled wire
        # program below, a negative row escapes to the code/object path
        # (which resynchronizes the shadow phases afterwards).  Validity is
        # tracked per node so :meth:`wake` can invalidate cheaply after a
        # scripted driver mutates registers directly.
        n_nodes = len(processors)
        self._tw_phase: list[int] = [0] * (n_nodes * 6)
        self._tw_valid = bytearray(b"\x01" * n_nodes)
        #: node -> (all_wires, wire_by_port, tail_wires, n_wires) or None
        #: (not table-walked).  all_wires: (dst, in_port << PORT_SHIFT) per
        #: connected out-port, the broadcast shape; wire_by_port: the same
        #: pairs indexed by out-port ((-1, 0) when unwired, matching the
        #: code sink's unconnected-slot error); tail_wires: per family
        #: bank, (dst, shifted_in, body_code, packed_base) per out-port —
        #: the §2.3.2 tail relay's body appends fully resolved.
        self._tw_nodes: list[tuple | None] = [None] * n_nodes
        if self.TABLE_WALK:
            code_base = self._code_base
            stride = topo.stride
            for node, ctable in enumerate(self._chandlers_all):
                if ctable is None or not processors[node].TABLE_AUTOMATON:
                    continue
                slot_base = node * stride
                out_ports = topo.out_ports_of(node)
                all_wires = tuple(
                    (
                        topo.wire_dst[slot_base + port],
                        self._in_shift[slot_base + port],
                    )
                    for port in out_ports
                )
                wire_by_port: list[tuple[int, int]] = [(-1, 0)] * stride
                for port in out_ports:
                    wire_by_port[port] = (
                        topo.wire_dst[slot_base + port],
                        self._in_shift[slot_base + port],
                    )
                tail_wires = tuple(
                    tuple(
                        (
                            topo.wire_dst[slot_base + port],
                            self._in_shift[slot_base + port],
                            bodies[port],
                            code_base[bodies[port]],
                        )
                        for port in out_ports
                    )
                    for bodies in kernel.body_codes
                )
                self._tw_nodes[node] = (
                    all_wires,
                    wire_by_port,
                    tail_wires,
                    len(all_wires),
                )
        self._pack_tick_locals()

    def _pack_tick_locals(self) -> None:
        """Bundle the per-tick loop's constant bindings into one tuple.

        ``step_tick`` runs once per event tick; rebinding a dozen attribute
        lookups there is measurable on sparse runs.  Everything in the
        bundle is either identity-stable across a reset (lists mutated in
        place) or re-packed by :meth:`reset` (the transcript is rebound).
        """
        wheel = self._wheel
        self._tick_locals = (
            self.processors,
            self._code_handlers,
            self._chars,
            self._fill_table,
            self.root,
            self.transcript.record_recv,
            self._chandlers,
            self._kernel_fill,
            self._kernel.n_codes,
            self._tw_nodes,
            # the table-walk emission pack: everything the inline wire
            # program touches, all identity-stable across a reset
            (
                self._tw_phase,
                self._tw_valid,
                self._kernel.trans_rows,
                self._kernel.trans_walkable,
                self._kernel.bank_list,
                self._code_base,
                self._emitted_by_code,
                wheel._buckets,
                wheel._ring,
                wheel._ticks,
            ),
        )

    def reset(self) -> None:
        """Restore power-on state; every compiled table survives.

        On top of :meth:`Engine.reset`: the per-code emission counters are
        zeroed *in place* (the fast-path closures captured the list), and
        the send-time sink/broadcast/purge closures — cleared by each
        processor's re-attach — are re-installed.  The compiled topology,
        interner, packed wheel dictionaries, fill table and code-handler
        tables are exactly the artifacts reuse exists to keep.
        """
        super().reset()
        emitted = self._emitted_by_code
        emitted[:] = [0] * len(emitted)
        processors = self.processors
        for node, paths in self._fast_paths.items():
            proc = processors[node]
            proc._direct_sink, proc._direct_broadcast, proc._purge_hook = paths
        # un-park every code-handler table (the closures themselves survive:
        # they reach all mutable processor state through `self` per call)
        self._chandlers[:] = self._chandlers_all
        # power-on registers are quiescent, so the shadow phases are all
        # zero and uniformly valid (both containers mutate in place — the
        # packed tick locals alias them)
        tw_phase = self._tw_phase
        tw_phase[:] = [0] * len(tw_phase)
        self._tw_valid[:] = b"\x01" * len(self._tw_valid)
        self._pack_tick_locals()  # the transcript recorder was rebound

    def wake(self, node: int) -> None:
        # Scripted drivers (the single-RCA/BCA harnesses) call methods on a
        # processor directly and then wake it: its registers may have moved
        # without a delivery, so the shadow phases must be rederived before
        # its next table-walked delivery.
        self._tw_valid[node] = 0
        super().wake(node)

    def _tw_sync(self, node: int) -> None:
        """Rederive ``node``'s shadow phases from its protocol registers.

        Called whenever the registers may have changed outside the table
        walk itself: after every escape or object-path delivery at the
        node, and lazily after a :meth:`wake` invalidation.  Any register
        shape the phase encoding cannot express maps to a phase whose rows
        all escape, so an inexpressible state costs speed, never
        correctness.
        """
        proc = self.processors[node]
        tw_phase = self._tw_phase
        base = node * 6
        delta = self._topo.delta
        esc = growing_esc_phase(delta)
        # growing banks: unvisited / visited-via-parent, except that an
        # engaged candidacy intercepts its own snake family (the closures'
        # rca_phase / bca_phase pre-checks) — that whole bank escapes
        m = proc._marks_ig
        tw_phase[base] = (1 + (m.parent_in or 0)) if m.visited else 0
        m = proc._marks_og
        tw_phase[base + 1] = (
            esc if proc.rca_phase else (1 + (m.parent_in or 0)) if m.visited else 0
        )
        m = proc._marks_bg
        tw_phase[base + 4] = (
            esc if proc.bca_phase else (1 + (m.parent_in or 0)) if m.visited else 0
        )
        # dying banks: an active relay's (pred, succ, promote_next) triple,
        # phase 0 (all rows escape) otherwise
        for off, relay in (
            (2, proc._relay_id),
            (3, proc._relay_od),
            (5, proc._relay_bd),
        ):
            pred = relay.pred
            succ = relay.succ
            if relay.active and pred is not None and succ is not None:
                tw_phase[base + off] = dying_phase(
                    delta, pred, succ, 1 if relay.promote_next else 0
                )
            else:
                tw_phase[base + off] = 0
        self._tw_valid[node] = 1

    # ------------------------------------------------------------------
    # metrics: counted per code in flat lists, materialized on read
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> TrafficMetrics:
        self._flush_metrics()
        return self._metrics

    @metrics.setter
    def metrics(self, value: TrafficMetrics) -> None:
        self._metrics = value

    def _flush_metrics(self) -> None:
        """Rebuild the :class:`TrafficMetrics` counters from per-code truth.

        Emissions are tallied per code at schedule time (and rolled back on
        purge), so the delivery count needs no per-hop bookkeeping at all:
        every emitted character is either delivered or still in the wheel,
        hence ``delivered = emitted - in_flight``.  The rebuild is
        idempotent, and ``delivered`` is exact at any event boundary.
        Mid-run ``emitted`` runs slightly ahead of the object backend's
        (a direct-scheduled character counts when queued, the object
        backend counts it when it leaves its sender's outbox); the two
        agree whenever no character is resting — in particular at
        termination, at idle, and at every point the parity contract
        compares.
        """
        chars = self._chars
        in_wheel = [0] * len(chars)
        for bucket in self._wheel._buckets.values():
            lanes = bucket.lanes
            for node in bucket.nodes:
                for packed in lanes[node]:
                    in_wheel[packed & CODE_MASK] += 1
        metrics = self._metrics
        emitted = metrics.emitted
        delivered = metrics.delivered
        emitted.clear()
        delivered.clear()
        for code, count in enumerate(self._emitted_by_code):
            if count:
                kind = chars[code].kind
                emitted[kind] += count
                done = count - in_wheel[code]
                if done:
                    delivered[kind] += done

    # ------------------------------------------------------------------
    # lazy growth when a character outside the constant alphabet appears
    # ------------------------------------------------------------------
    def _grow_code_tables(self) -> None:
        self._extend_fill_table()  # may intern filled variants; runs first
        total = len(self._chars)
        grow = total - len(self._emitted_by_code)
        if grow > 0:
            self._emitted_by_code.extend([0] * grow)
        growing = self._growing_code  # shared per interner: may be ahead
        if len(growing) < total:
            growing.extend(
                char.kind in GROWING_KINDS for char in self._chars[len(growing):]
            )
        for node, code_table in enumerate(self._code_handlers):
            if code_table is None:
                continue  # not resolved yet; built to full size on demand
            missing = total - len(code_table)
            if missing > 0:
                table = self._kind_tables[node]
                code_table.extend(
                    table.get(char.kind) for char in self._chars[-missing:]
                )

    def _node_code_table(self, node: int) -> list:
        """Resolve (and cache) ``node``'s code-indexed object-handler list.

        Lazily replaces the eager per-node tables the engine used to build
        up front: with code dispatch in front of the object path, only the
        root and nodes that actually take a fallback delivery ever pay for
        one.
        """
        kind_table = self._kind_tables[node]
        if kind_table is None:
            kind_table = self._kind_tables[node] = self.processors[
                node
            ].handler_table()
        code_table = self._code_handlers[node] = [
            kind_table.get(char.kind) for char in self._chars
        ]
        return code_table

    def _extend_fill_table(self) -> None:
        """Precompute canonical STAR-filled variants for new codes.

        Building a variant may itself intern a new canonical (a filled
        tail is not part of the paper's alphabet census), growing
        ``self._chars`` while we walk it — the while-loop chases the tail
        until the table covers every code.  New canonicals are concrete
        (no STAR), so the chase terminates after one generation.
        """
        table = self._fill_table
        chars = self._chars
        wheel = self._wheel
        delta = self._topo.delta
        # Only growing snakes and the DFS token are filled: those are the
        # characters the protocol routes through :func:`fill_in_port`
        # (dying snakes and tokens keep their recorded entries verbatim).
        while len(table) < len(chars):
            char = chars[len(table)]
            if char.in_port == STAR and (is_growing(char) or char.kind == "DFS"):
                variants: list[Char | None] = [None]
                for in_port in range(1, delta + 1):
                    filled = Char(char.kind, char.out_port, in_port, char.payload)
                    code = wheel.encode_base(filled) & CODE_MASK
                    variants.append(chars[code])
                table.append(variants)
            else:
                table.append(None)

    # ------------------------------------------------------------------
    # the data plane
    # ------------------------------------------------------------------
    def _next_event_tick(self) -> int | None:
        """Inline of :meth:`Engine._next_event_tick` over the packed wheel.

        Same answer, two fewer method calls per event tick — this runs
        once per fast-forward step, which dominates sparse-traffic runs.
        """
        wheel = self._wheel
        ticks = wheel._ticks
        buckets = wheel._buckets
        while ticks and ticks[0] not in buckets:
            ticks.pop(0)
        due = self._active._due
        if not ticks:
            return due[0][0] if due else None
        wheel_tick = ticks[0]
        if due:
            due_tick = due[0][0]
            if due_tick < wheel_tick:
                return due_tick
        return wheel_tick

    def step_tick(self) -> None:
        """Advance the global clock by exactly one tick."""
        self.tick = tick = self.tick + 1
        wheel = self._wheel
        bucket = wheel.pop(tick)

        if bucket is not None:
            (
                processors,
                code_handlers,
                chars,
                fill_table,
                root,
                record_recv,
                live_chandlers,
                kfill,
                kn,
                tw_nodes,
                (
                    tw_phase,
                    tw_valid,
                    trans_rows,
                    walkable,
                    bank_list,
                    code_base,
                    emitted,
                    buckets,
                    ring,
                    wticks,
                ),
            ) = self._tick_locals
            tw_sync = self._tw_sync
            n_codes = len(fill_table)
            tracer = self.tracer
            lanes = bucket.lanes
            # the code-space kernel: per-tick gate — a tracer needs every
            # delivery decoded and recorded, so its presence sends whole
            # ticks down the object path
            chandlers = live_chandlers if tracer is None else None
            # the packed-entry field constants, bound once per tick: the
            # per-entry decode below is the hottest code in a flat run
            code_mask = CODE_MASK
            port_shift = PORT_SHIFT
            port_mask = PORT_MASK
            for node in bucket.nodes:
                lane = lanes[node]
                proc = processors[node]
                # one plain integer sort recovers (priority, in-port, FIFO)
                entries = sorted(lane) if len(lane) > 1 else lane
                ctable = chandlers[node] if chandlers is not None else None
                if ctable is not None:
                    tw = tw_nodes[node]
                    if tw is not None:
                        # Table-walked delivery: the protocol automaton
                        # lowered to kernel transition rows.  One row
                        # lookup replaces fill + dispatch + closure frame
                        # for every escape-free transition; row layout is
                        # op | phase << 3 | port << 19 | code << 25 (see
                        # sim/characters.py), 0 drops, negative escapes to
                        # the code/object path with the filled code fused
                        # in — and every escape drops the node's shadow
                        # phases (the cold handlers move registers), to be
                        # rederived just before the next row read.  Lazy,
                        # not eager: a KILL/UNMARK/token flood pays one
                        # byte store per delivery, never a 6-bank resync.
                        proc._tick = tick
                        tw_base = node * 6
                        all_wires, wire_by_port, tail_wires, n_wires = tw
                        handlers = fallback = None
                        for packed in entries:
                            code = packed & code_mask
                            in_port = (packed >> port_shift) & port_mask
                            if code < kn and walkable[code]:
                                if not tw_valid[node]:
                                    tw_sync(node)
                                bank = bank_list[code]
                                row = trans_rows[code][in_port][
                                    tw_phase[tw_base + bank]
                                ]
                                if row == 0:
                                    continue
                                if row > 0:
                                    op = row & 7
                                    fc = row >> 25
                                    if op == 4:
                                        # dying body pass-through: one
                                        # append on the relay's succ wire
                                        dst, shifted_in = wire_by_port[
                                            (row >> 19) & 63
                                        ]
                                        if dst < 0:
                                            raise SimulationError(
                                                f"node {node} emitted "
                                                f"{chars[fc]} through "
                                                "unconnected out-port "
                                                f"{(row >> 19) & 63}"
                                            )
                                        emitted[fc] += 1
                                        arrival = tick + 3
                                        tbucket = buckets.get(arrival)
                                        if tbucket is None:
                                            tbucket = (
                                                ring.pop() if ring else _Bucket()
                                            )
                                            buckets[arrival] = tbucket
                                            wticks.append(arrival)
                                            if (
                                                len(wticks) > 1
                                                and arrival < wticks[-2]
                                            ):
                                                wticks.sort()
                                        tlanes = tbucket.lanes
                                        tlane = tlanes.get(dst)
                                        if tlane is None:
                                            tlane = tlanes[dst] = array("q")
                                            tbucket.nodes.append(dst)
                                        elif not tlane:
                                            tbucket.nodes.append(dst)
                                        tlane.append(
                                            code_base[fc]
                                            | shifted_in
                                            | (len(tlane) << SEQ_SHIFT)
                                        )
                                        continue
                                    if op == 3:
                                        # tail relay: per-port body appends
                                        # this residence, filled tail
                                        # broadcast one tick later
                                        arrival = tick + 3
                                        tbucket = buckets.get(arrival)
                                        if tbucket is None:
                                            tbucket = (
                                                ring.pop() if ring else _Bucket()
                                            )
                                            buckets[arrival] = tbucket
                                            wticks.append(arrival)
                                            if (
                                                len(wticks) > 1
                                                and arrival < wticks[-2]
                                            ):
                                                wticks.sort()
                                        tlanes = tbucket.lanes
                                        tnodes = tbucket.nodes
                                        for (
                                            dst,
                                            shifted_in,
                                            bcode,
                                            bbase,
                                        ) in tail_wires[bank]:
                                            emitted[bcode] += 1
                                            tlane = tlanes.get(dst)
                                            if tlane is None:
                                                tlane = tlanes[dst] = array("q")
                                                tnodes.append(dst)
                                            elif not tlane:
                                                tnodes.append(dst)
                                            tlane.append(
                                                bbase
                                                | shifted_in
                                                | (len(tlane) << SEQ_SHIFT)
                                            )
                                        arrival += 1
                                    else:
                                        # op 1 broadcast, op 2 mark first:
                                        # the §2.3.2 head mark is the only
                                        # register write the tables own
                                        if op == 2:
                                            tw_phase[tw_base + bank] = (
                                                row >> 3
                                            ) & 0xFFFF
                                            (
                                                proc._marks_ig
                                                if bank == 0
                                                else proc._marks_og
                                                if bank == 1
                                                else proc._marks_bg
                                            ).mark(in_port)
                                        arrival = tick + 3
                                    emitted[fc] += n_wires
                                    tbucket = buckets.get(arrival)
                                    if tbucket is None:
                                        tbucket = ring.pop() if ring else _Bucket()
                                        buckets[arrival] = tbucket
                                        wticks.append(arrival)
                                        if len(wticks) > 1 and arrival < wticks[-2]:
                                            wticks.sort()
                                    tlanes = tbucket.lanes
                                    tnodes = tbucket.nodes
                                    base = code_base[fc]
                                    for dst, shifted_in in all_wires:
                                        tlane = tlanes.get(dst)
                                        if tlane is None:
                                            tlane = tlanes[dst] = array("q")
                                            tnodes.append(dst)
                                        elif not tlane:
                                            tnodes.append(dst)
                                        tlane.append(
                                            base
                                            | shifted_in
                                            | (len(tlane) << SEQ_SHIFT)
                                        )
                                    continue
                                # escape row: the cold path, fill fused in
                                code = -row - 1
                                h = ctable[code]
                                if h is not None:
                                    h(in_port, code)
                                    tw_valid[node] = 0
                                    continue
                                char = chars[code]
                            elif code < kn:
                                # all-escape plane (tokens, KILL/UNMARK,
                                # dying heads and tails): straight to the
                                # closure path — no register sync, no row
                                # read; the escape row would only rediscover
                                # the kernel fill.  A token flood therefore
                                # never resyncs the shadow phases at all.
                                code = kfill[code][in_port]
                                h = ctable[code]
                                if h is not None:
                                    h(in_port, code)
                                    tw_valid[node] = 0
                                    continue
                                char = chars[code]
                            else:
                                if code >= n_codes:
                                    self._grow_code_tables()
                                    n_codes = len(fill_table)
                                    handlers = None
                                char = chars[code]
                                fills = fill_table[code]
                                if fills is not None:
                                    char = fills[in_port]
                            if handlers is None:
                                handlers = (
                                    code_handlers[node]
                                    or self._node_code_table(node)
                                )
                                fallback = proc.handle
                            handler = handlers[code]
                            if handler is None:
                                fallback(in_port, char)
                            else:
                                handler(in_port, char)
                            tw_valid[node] = 0
                        continue
                    # code-space delivery: fill is one indexed load, the
                    # handler dispatches on the small-int code, and only
                    # codes outside the kernel (lazily interned strays) or
                    # without a code handler decode a Char.  The kernel
                    # fill agrees with fill_table on every kernel code by
                    # construction, so the fallback skips the object fill.
                    # begin_tick inlined (table install requires the base
                    # implementation); object-path bindings resolve lazily.
                    proc._tick = tick
                    handlers = fallback = None
                    for packed in entries:
                        code = packed & code_mask
                        in_port = (packed >> port_shift) & port_mask
                        if code < kn:
                            code = kfill[code][in_port]
                            h = ctable[code]
                            if h is not None:
                                h(in_port, code)
                                continue
                            char = chars[code]
                        else:
                            if code >= n_codes:
                                self._grow_code_tables()
                                n_codes = len(fill_table)
                                handlers = None
                            char = chars[code]
                            fills = fill_table[code]
                            if fills is not None:
                                char = fills[in_port]
                        if handlers is None:
                            handlers = (
                                code_handlers[node]
                                or self._node_code_table(node)
                            )
                            fallback = proc.handle
                        handler = handlers[code]
                        if handler is None:
                            fallback(in_port, char)
                        else:
                            handler(in_port, char)
                    continue
                # the object path may move any register (tracer ticks,
                # parked nodes, handler-less processors): drop the node's
                # shadow phases and rederive on its next table walk
                tw_valid[node] = 0
                proc.begin_tick(tick)
                handlers = code_handlers[node]
                if handlers is None:
                    handlers = self._node_code_table(node)
                fallback = proc.handle
                is_root = node == root
                for packed in entries:
                    code = packed & code_mask
                    if code >= n_codes:
                        # a code scheduled through the generic wheel API
                        # without passing the engine's intern path
                        self._grow_code_tables()
                        handlers = code_handlers[node]
                        n_codes = len(fill_table)
                    in_port = (packed >> port_shift) & port_mask
                    char = chars[code]
                    if is_root:
                        record_recv(tick, in_port, char)
                    if tracer is not None:
                        tracer.record_delivery(tick, node, in_port, char)
                    fills = fill_table[code]
                    if fills is not None:
                        # §2.3.2 STAR fill, resolved to the canonical
                        # instance once per (character, port) pair
                        char = fills[in_port]
                    handler = handlers[code]
                    if handler is None:
                        fallback(in_port, char)
                    else:
                        handler(in_port, char)

        # Sink-equipped processors schedule at send time and keep an empty
        # outbox; only nodes actually holding outbox entries (the root,
        # sink-less processors, tracer interludes) need a drain pass.  A
        # node hit by both loops drains twice — the second pass is an
        # empty, side-effect-free fast path, cheaper than building the
        # union set every tick.
        active = self._active
        if active._due:
            for node in active.take_due(tick):
                self._drain_node(node)
        if bucket is not None:
            # fused outbox sweep + bucket recycle: one walk over the
            # delivered nodes checks for queued output and empties the
            # lane (drains schedule at tick+1, never into this bucket)
            nodes = bucket.nodes
            for node in nodes:
                if processors[node]._outbox:
                    self._drain_node(node)
                del lanes[node][:]
            nodes.clear()
            wheel._ring.append(bucket)

    def _blocked_emission(self, node: int, out_port: int, char: Char, dst: int) -> bool:
        """Handle an emission through a slot holding no live wire (dst < 0).

        Returns True if the emission was consumed as *modeled* behaviour.
        The static engine knows no such thing — an unconnected out-port is
        always a simulation bug here — but the dynamic subclass overrides
        this to turn the :data:`~repro.topology.compile.CUT` sentinel into
        a lost character, which is what keeps the fused drain usable while
        the wiring changes under the run.
        """
        raise SimulationError(
            f"node {node} emitted {char} through unconnected out-port {out_port}"
        )

    def _emit(self, wire, node: int, out_port: int, char: Char) -> None:
        """Slow-path emission over an explicit wire (dynamic added wires).

        Mirrors :meth:`Engine._emit` but counts the emission per code, so
        the ``delivered = emitted - in_flight`` flush arithmetic covers
        every character that can end up in the wheel.
        """
        base = self._id_base.get(id(char))
        if base is None:
            base = self._wheel.encode_base(char)
            if (base & CODE_MASK) >= len(self._emitted_by_code):
                self._grow_code_tables()
        self._emitted_by_code[base & CODE_MASK] += 1
        if node == self.root:
            self.transcript.record_send(self.tick, out_port, char)
        if self.tracer is not None:
            self.tracer.record_emission(self.tick, node, out_port, char)
        self._wheel.schedule(self.tick + 1, wire.dst, wire.in_port, char)

    def _make_direct_sink(self, node: int):
        """A send-time scheduler for ``node``'s outgoing characters.

        Installed on processors that declare ``PURGES_ONLY_GROWING`` (and
        never on the root — its transcript must record sends in drain
        order).  A queued character's arrival tick is fully determined at
        send time, so it can skip the outbox/drain round trip and land
        directly in its packed wheel lane; the companion purge hook
        (:meth:`_make_purge_hook`) keeps KILL semantics exact for growing
        characters.  Declines (returns False) while a tracer is attached,
        because tracers expect emission records at drain time.
        """
        topo = self._topo
        slot_base = node * topo.stride
        wire_dst = topo.wire_dst
        in_shift = self._in_shift
        wheel = self._wheel
        buckets = wheel._buckets
        ring = wheel._ring
        ticks = wheel._ticks
        id_base = self._id_base
        encode_base = wheel.encode_base
        emitted = self._emitted_by_code  # extended in place, never rebound
        prev_char: Char | None = None
        prev_base = 0

        def sink(out_port: int, char: Char, arrival: int) -> bool:
            nonlocal prev_char, prev_base
            if self.tracer is not None:
                return False
            slot = slot_base + out_port
            dst = wire_dst[slot]
            if dst < 0:
                raise SimulationError(
                    f"node {node} emitted {char} through unconnected "
                    f"out-port {out_port}"
                )
            if char is prev_char:  # broadcasts queue one object per port
                base = prev_base
            else:
                base = id_base.get(id(char))
                if base is None:
                    base = encode_base(char)
                    if (base & CODE_MASK) >= len(emitted):
                        self._grow_code_tables()
                prev_char = char
                prev_base = base
            emitted[base & CODE_MASK] += 1
            bucket = buckets.get(arrival)
            if bucket is None:
                bucket = ring.pop() if ring else _Bucket()
                buckets[arrival] = bucket
                ticks.append(arrival)
                if len(ticks) > 1 and arrival < ticks[-2]:
                    ticks.sort()
            lanes = bucket.lanes
            lane = lanes.get(dst)
            if lane is None:
                lane = lanes[dst] = array("q")
                bucket.nodes.append(dst)
            elif not lane:
                bucket.nodes.append(dst)
            lane.append(base | in_shift[slot] | (len(lane) << SEQ_SHIFT))
            return True

        return sink

    def _make_broadcast_sink(self, node: int):
        """The :meth:`_make_direct_sink` fast path, batched per broadcast.

        One call encodes the character once and appends an entry per
        connected out-port — broadcasts are the protocol's dominant
        emission shape (flood relays), so the per-port call overhead is
        worth eliminating.  Ports come from the processor's own context,
        which only lists connected out-ports, so no unwired-slot check is
        needed.
        """
        topo = self._topo
        slot_base = node * topo.stride
        # (dst, in_port << PORT_SHIFT) per connected out-port, in port order
        # — the shape a broadcast walks, fully resolved ahead of time.
        all_wires = tuple(
            (topo.wire_dst[slot_base + port], self._in_shift[slot_base + port])
            for port in topo.out_ports_of(node)
        )
        all_ports = None  # resolved lazily: ctx exists only after attach
        wheel = self._wheel
        buckets = wheel._buckets
        ring = wheel._ring
        ticks = wheel._ticks
        id_base = self._id_base
        encode_base = wheel.encode_base
        emitted = self._emitted_by_code  # extended in place, never rebound
        wire_dst = topo.wire_dst
        in_shift = self._in_shift
        proc = self.processors[node]

        def sink_many(ports: tuple, char: Char, arrival: int) -> bool:
            nonlocal all_ports
            if self.tracer is not None:
                return False
            base = id_base.get(id(char))
            if base is None:
                base = encode_base(char)
                if (base & CODE_MASK) >= len(emitted):
                    self._grow_code_tables()
            emitted[base & CODE_MASK] += len(ports)
            bucket = buckets.get(arrival)
            if bucket is None:
                bucket = ring.pop() if ring else _Bucket()
                buckets[arrival] = bucket
                ticks.append(arrival)
                if len(ticks) > 1 and arrival < ticks[-2]:
                    ticks.sort()
            lanes = bucket.lanes
            nodes = bucket.nodes
            if all_ports is None:
                all_ports = proc.ctx.out_ports
            if ports is all_ports:  # the broadcast shape, pre-resolved
                wires = all_wires
            else:
                wires = [
                    (wire_dst[slot_base + port], in_shift[slot_base + port])
                    for port in ports
                ]
            for dst, shifted_in in wires:
                lane = lanes.get(dst)
                if lane is None:
                    lane = lanes[dst] = array("q")
                    nodes.append(dst)
                elif not lane:
                    nodes.append(dst)
                lane.append(base | shifted_in | (len(lane) << SEQ_SHIFT))
            return True

        return sink_many

    def _make_code_sink(self, node: int):
        """A send-time scheduler over raw character codes.

        The code-space companion of :meth:`_make_direct_sink`, handed to
        :meth:`~repro.sim.processor.Processor.code_handler_table` as
        ``csend(out_port, code, arrival_tick)``.  No intern lookup, no
        identity memo, no decline protocol: the caller is a code handler,
        which only ever runs when no tracer is attached (gated per tick)
        and only ever emits kernel codes — so the body is the wire resolve,
        the emission count, and the packed append.  Raises the same
        :class:`~repro.errors.SimulationError` as the object sink on an
        unconnected slot.
        """
        topo = self._topo
        slot_base = node * topo.stride
        wire_dst = topo.wire_dst
        in_shift = self._in_shift
        wheel = self._wheel
        buckets = wheel._buckets
        ring = wheel._ring
        ticks = wheel._ticks
        emitted = self._emitted_by_code  # extended in place, never rebound
        code_base = self._code_base
        chars = self._chars

        def csend(out_port: int, code: int, arrival: int) -> None:
            slot = slot_base + out_port
            dst = wire_dst[slot]
            if dst < 0:
                raise SimulationError(
                    f"node {node} emitted {chars[code]} through unconnected "
                    f"out-port {out_port}"
                )
            emitted[code] += 1
            bucket = buckets.get(arrival)
            if bucket is None:
                bucket = ring.pop() if ring else _Bucket()
                buckets[arrival] = bucket
                ticks.append(arrival)
                if len(ticks) > 1 and arrival < ticks[-2]:
                    ticks.sort()
            lanes = bucket.lanes
            lane = lanes.get(dst)
            if lane is None:
                lane = lanes[dst] = array("q")
                bucket.nodes.append(dst)
            elif not lane:
                bucket.nodes.append(dst)
            lane.append(code_base[code] | in_shift[slot] | (len(lane) << SEQ_SHIFT))

        return csend

    def _make_code_broadcast(self, node: int):
        """The code-space :meth:`_make_broadcast_sink`: one call, all ports.

        Handed to ``code_handler_table`` as ``cbroadcast(code,
        arrival_tick)``.  Code handlers always broadcast through every
        connected out-port (the §2.3.2 flood shape), so the wire list is
        resolved once at build time; the dynamic engine parks a node's code
        handlers whenever its out-wiring degrades, exactly as it parks the
        object sinks, so the precomputed list never goes stale while in
        use.
        """
        topo = self._topo
        slot_base = node * topo.stride
        all_wires = tuple(
            (topo.wire_dst[slot_base + port], self._in_shift[slot_base + port])
            for port in topo.out_ports_of(node)
        )
        n_ports = len(all_wires)
        wheel = self._wheel
        buckets = wheel._buckets
        ring = wheel._ring
        ticks = wheel._ticks
        emitted = self._emitted_by_code  # extended in place, never rebound
        code_base = self._code_base

        def cbroadcast(code: int, arrival: int) -> None:
            emitted[code] += n_ports
            bucket = buckets.get(arrival)
            if bucket is None:
                bucket = ring.pop() if ring else _Bucket()
                buckets[arrival] = bucket
                ticks.append(arrival)
                if len(ticks) > 1 and arrival < ticks[-2]:
                    ticks.sort()
            lanes = bucket.lanes
            nodes = bucket.nodes
            base = code_base[code]
            for dst, shifted_in in all_wires:
                lane = lanes.get(dst)
                if lane is None:
                    lane = lanes[dst] = array("q")
                    nodes.append(dst)
                elif not lane:
                    nodes.append(dst)
                lane.append(base | shifted_in | (len(lane) << SEQ_SHIFT))

        return cbroadcast

    def _make_purge_hook(self, node: int):
        """Erase ``node``'s pre-scheduled, still-purgeable characters.

        Under outbox semantics a character rests in its sender until its
        departure tick; a KILL arriving now may erase it.  The direct sink
        has already filed those characters into future wheel buckets, so
        the purge walks every future bucket (there are at most a handful —
        the residence horizon), filters ``node``'s entries out of the lanes
        of its wire destinations (the arrival in-port identifies the wire,
        hence the sender), and renumbers the surviving lane sequence
        numbers to keep them dense.  Emission counters are rolled back so
        traffic metrics match the object backend, which never counts a
        purged character as emitted.
        """
        topo = self._topo
        stride = topo.stride
        out_wires: list[tuple[int, int]] = []  # (dst, in_port)
        for port in topo.out_ports_of(node):
            slot = node * stride + port
            out_wires.append((topo.wire_dst[slot], topo.wire_in_port[slot]))
        wheel = self._wheel
        chars = self._chars
        emitted = self._emitted_by_code  # extended in place, never rebound
        growing_code = self._growing_code  # idem
        seq_field = ((1 << SEQ_BITS) - 1) << SEQ_SHIFT

        def purge(predicate) -> int:
            removed = 0
            now = self.tick
            for arrival, bucket in list(wheel._buckets.items()):
                if arrival <= now:
                    continue  # already departed under outbox semantics
                lanes = bucket.lanes
                for dst, in_port in out_wires:
                    lane = lanes.get(dst)
                    if not lane:
                        continue
                    kept: list[int] | None = None
                    for index, packed in enumerate(lane):
                        code = packed & CODE_MASK
                        # the PURGES_ONLY_GROWING contract: the predicate
                        # can only ever match growing-snake kinds, so
                        # everything else skips the decode + call
                        if (
                            growing_code[code]
                            and ((packed >> PORT_SHIFT) & PORT_MASK) == in_port
                            and predicate(chars[code])
                        ):
                            if kept is None:
                                kept = list(lane[:index])
                            removed += 1
                            emitted[code] -= 1
                        elif kept is not None:
                            kept.append(packed)
                    if kept is not None:
                        del lane[:]
                        for index, packed in enumerate(kept):
                            lane.append(
                                (packed & ~seq_field) | (index << SEQ_SHIFT)
                            )
                        if not lane:
                            # keep the "listed once ⟺ lane non-empty"
                            # invariant: a later schedule into the emptied
                            # lane re-appends the node
                            bucket.nodes.remove(dst)
                if not bucket.nodes:
                    # The purge emptied the whole bucket.  Leaving it in
                    # the wheel would keep the engine "busy" (is_idle,
                    # next_tick and the fast-forward all key off bucket
                    # presence) and make run_to_idle step to a tick where
                    # nothing happens — a tick-count divergence from the
                    # object backend, whose purge empties outboxes before
                    # they ever reach the wheel.
                    del wheel._buckets[arrival]
                    wheel.recycle(bucket)
            return removed

        return purge

    def _drain_node(self, node: int) -> None:
        """Fused drain: outbox → CSR wire → packed lane, no per-entry calls.

        Semantically identical to :meth:`Engine._drain_node` (which loops
        ``_put_on_wire`` per entry); this version hoists every lookup out
        of the loop and memoizes the encode of consecutive entries carrying
        the same character instance — a broadcast queues the same object
        once per out-port, so the memo hits on all but the first.
        """
        if not self._fused_drain:
            Engine._drain_node(self, node)
            return
        proc = self.processors[node]
        tick = self.tick
        entries = proc.drain_due(tick)
        if entries:
            topo = self._topo
            wire_dst = topo.wire_dst
            in_shift = self._in_shift
            slot_base = node * topo.stride
            wheel = self._wheel
            id_base = self._id_base
            emitted = self._emitted_by_code
            tracer = self.tracer
            is_root = node == self.root
            next_tick = tick + 1
            bucket = wheel._buckets.get(next_tick)
            if bucket is None:
                bucket = wheel._ring.pop() if wheel._ring else _Bucket()
                wheel._buckets[next_tick] = bucket
                ticks = wheel._ticks
                ticks.append(next_tick)
                if len(ticks) > 1 and next_tick < ticks[-2]:
                    ticks.sort()
            lanes = bucket.lanes
            touched = bucket.nodes
            # per-entry lookups hoisted out of the loop: bound methods for
            # the two dict/list hits every entry makes, the packed-field
            # constants, and the root's transcript recorder
            lanes_get = lanes.get
            touched_append = touched.append
            id_base_get = id_base.get
            code_mask = CODE_MASK
            seq_shift = SEQ_SHIFT
            record_send = self.transcript.record_send if is_root else None
            prev_char: Char | None = None
            prev_base = 0
            for entry in entries:
                char = entry.char
                out_port = entry.out_port
                slot = slot_base + out_port
                dst = wire_dst[slot]
                if dst < 0:
                    if self._blocked_emission(node, out_port, char, dst):
                        continue
                if char is prev_char:
                    base = prev_base
                else:
                    base = id_base_get(id(char))
                    if base is None:
                        base = wheel.encode_base(char)
                        if (base & code_mask) >= len(emitted):
                            self._grow_code_tables()
                    prev_char = char
                    prev_base = base
                emitted[base & code_mask] += 1
                if record_send is not None:
                    record_send(tick, out_port, char)
                if tracer is not None:
                    tracer.record_emission(tick, node, out_port, char)
                lane = lanes_get(dst)
                if lane is None:
                    lane = lanes[dst] = array("q")
                    touched_append(dst)
                elif not lane:
                    touched_append(dst)
                lane.append(base | in_shift[slot] | (len(lane) << seq_shift))
            if not touched:
                # every entry was blocked (dynamic cut wires): an empty
                # registered bucket would keep the engine "busy" one tick
                # past the object backend — same cleanup as the purge hook
                del wheel._buckets[next_tick]
                wheel.recycle(bucket)
        self._active.update(node, proc._next_due)

    def _put_on_wire(self, node: int, out_port: int, char: Char) -> None:
        topo = self._topo
        slot = node * topo.stride + out_port
        dst = topo.wire_dst[slot]
        if dst < 0:
            if self._blocked_emission(node, out_port, char, dst):
                return
        base = self._id_base.get(id(char))
        if base is None:
            base = self._wheel.encode_base(char)
        code = base & CODE_MASK
        if code >= len(self._emitted_by_code):
            self._grow_code_tables()
        self._emitted_by_code[code] += 1
        if node == self.root:
            self.transcript.record_send(self.tick, out_port, char)
        if self.tracer is not None:
            self.tracer.record_emission(self.tick, node, out_port, char)
        # inline of PackedEventWheel.schedule with the base already in hand
        wheel = self._wheel
        tick = self.tick + 1
        bucket = wheel._buckets.get(tick)
        if bucket is None:
            bucket = wheel._ring.pop() if wheel._ring else _Bucket()
            wheel._buckets[tick] = bucket
            ticks = wheel._ticks
            ticks.append(tick)
            if len(ticks) > 1 and tick < ticks[-2]:
                ticks.sort()
        lane = bucket.lanes.get(dst)
        if lane is None:
            lane = bucket.lanes[dst] = array("q")
            bucket.nodes.append(dst)
        elif not lane:
            bucket.nodes.append(dst)
        lane.append(
            base | self._in_shift[slot] | (len(lane) << SEQ_SHIFT)
        )
