"""Layer 1 — the scheduler core of the simulation stack.

The :class:`~repro.sim.engine.Engine` used to hand-roll its delivery queue,
active-set bookkeeping and per-character priority sort inside ``step_tick``.
This module extracts those mechanisms into three reusable pieces that the
engine (and its :class:`~repro.dynamics.engine.DynamicEngine` subclass)
compose:

* :class:`EventWheel` — a timestamp-bucketed delivery queue.  A scheduled
  character is stored as a ``(priority, in_port, seq, char)`` tuple so one
  plain tuple sort recovers the paper's deterministic in-tick handling
  order (KILL/UNMARK first, then dying snakes, then growing snakes, then
  tokens; ties broken by in-port then FIFO) without calling a key function
  per character.  ``seq`` is globally unique, so the tuple comparison never
  reaches the (unorderable) :class:`~repro.sim.characters.Char`.
* :class:`ActiveSet` — tracks which processors hold resting characters and
  the earliest tick any of them is due to leave, via a lazily-invalidated
  min-heap.  The engine drains only processors with due outbox entries
  instead of sweeping every live node every tick.
* :data:`KIND_PRIORITY` — the in-tick handling priority precomputed per
  character *kind* (the closed set of kind strings is the character class);
  enqueueing looks the priority up once instead of re-deriving it from
  string predicates inside the sort.

Both structures expose ``next_*`` queries so the engine can fast-forward
the global clock across ticks in which provably nothing happens (see
``Engine._next_event_tick``) while staying tick-exact about everything it
delivers, drains or records.

:func:`build_dispatch_tables` completes the layer: it asks each processor
for a precomputed handler table keyed by character kind
(:meth:`repro.sim.processor.Processor.handler_table`), so the hot delivery
loop jumps straight to the right handler instead of walking an
``if kind == ...`` chain per character.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING, Callable, Iterator

from repro.sim.characters import (
    DYING_FAMILIES,
    GROWING_FAMILIES,
    Char,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.processor import Processor

__all__ = [
    "PRIORITY_CONTROL",
    "PRIORITY_DYING",
    "PRIORITY_GROWING",
    "PRIORITY_TOKEN",
    "KIND_PRIORITY",
    "priority_of",
    "EventWheel",
    "ActiveSet",
    "build_dispatch_tables",
]

#: KILL/UNMARK must be seen before growing characters arriving the same
#: tick so the speed-3 catch-up argument (Lemma 4.2) is exact.
PRIORITY_CONTROL = 0
#: Dying characters outrank growing ones so loop marking is never raced by
#: the flood it is about to clean up.
PRIORITY_DYING = 1
PRIORITY_GROWING = 2
#: DFS / FWD / BACK / BDONE and anything a test double invents.
PRIORITY_TOKEN = 3


def priority_of(kind: str) -> int:
    """In-tick handling priority of a character kind; lower handles first."""
    if kind in ("KILL", "UNMARK"):
        return PRIORITY_CONTROL
    if len(kind) == 3:
        family = kind[:2]
        if family in DYING_FAMILIES:
            return PRIORITY_DYING
        if family in GROWING_FAMILIES:
            return PRIORITY_GROWING
    return PRIORITY_TOKEN


class _PriorityTable(dict):
    """``{kind: priority}`` cache, self-populating on first sight of a kind."""

    def __missing__(self, kind: str) -> int:
        prio = priority_of(kind)
        self[kind] = prio
        return prio


#: The precomputed priority table.  Character kinds form a small closed set,
#: so after warm-up every enqueue is one dict hit.
KIND_PRIORITY: dict[str, int] = _PriorityTable()


class EventWheel:
    """Timestamp-bucketed delivery queue.

    ``schedule`` files a character for delivery to ``(node, in_port)`` at an
    absolute tick; ``pop`` hands back everything due at a tick, grouped by
    node, as sortable ``(priority, in_port, seq, char)`` tuples.

    Buckets and their per-node lists are recycled: the engine hands a
    delivered bucket back through :meth:`recycle`, which clears it into a
    free pool instead of leaving it for the allocator — steady-state ticks
    then reuse the same dict and list objects over and over.  Callers that
    never recycle (tests, one-shot inspection) simply forgo the reuse.
    """

    __slots__ = ("_buckets", "_ticks", "_seq", "_bucket_pool", "_list_pool")

    def __init__(self) -> None:
        # tick -> node -> [(priority, in_port, seq, char), ...]
        self._buckets: dict[int, dict[int, list[tuple[int, int, int, Char]]]] = {}
        self._ticks: list[int] = []  # min-heap of bucket keys (lazily cleaned)
        self._seq = 0
        self._bucket_pool: list[dict] = []
        self._list_pool: list[list] = []

    def schedule(self, tick: int, node: int, in_port: int, char: Char) -> None:
        """File ``char`` for delivery at ``tick`` through ``in_port``."""
        bucket = self._buckets.get(tick)
        if bucket is None:
            pool = self._bucket_pool
            bucket = self._buckets[tick] = pool.pop() if pool else {}
            heappush(self._ticks, tick)
        entry = (KIND_PRIORITY[char.kind], in_port, self._seq, char)
        self._seq += 1
        items = bucket.get(node)
        if items is None:
            pool = self._list_pool
            if pool:
                items = pool.pop()
                items.append(entry)
            else:
                items = [entry]
            bucket[node] = items
        else:
            items.append(entry)

    def pop(self, tick: int) -> dict[int, list[tuple[int, int, int, Char]]] | None:
        """Remove and return the arrivals bucket for ``tick`` (or ``None``)."""
        return self._buckets.pop(tick, None)

    def clear(self) -> None:
        """Empty the wheel in place, keeping the recycled free pools.

        Engine reuse (:meth:`repro.sim.engine.Engine.reset`) clears rather
        than replaces the wheel so the warmed bucket/list pools carry over
        to the next run.
        """
        for bucket in self._buckets.values():
            self.recycle(bucket)
        self._buckets.clear()
        self._ticks.clear()
        self._seq = 0

    def recycle(self, bucket: dict[int, list]) -> None:
        """Clear a popped, fully-delivered bucket into the free pools."""
        list_pool = self._list_pool
        for items in bucket.values():
            del items[:]
            list_pool.append(items)
        bucket.clear()
        self._bucket_pool.append(bucket)

    def next_tick(self) -> int | None:
        """The earliest tick holding scheduled arrivals, or ``None``."""
        ticks = self._ticks
        buckets = self._buckets
        while ticks and ticks[0] not in buckets:
            heappop(ticks)
        return ticks[0] if ticks else None

    def __bool__(self) -> bool:
        return bool(self._buckets)

    def __len__(self) -> int:
        return sum(
            len(items) for bucket in self._buckets.values() for items in bucket.values()
        )

    def in_flight(self) -> Iterator[tuple[int, Char]]:
        """All scheduled characters as ``(destination, char)`` pairs."""
        for bucket in self._buckets.values():
            for node, items in bucket.items():
                for _, _, _, char in items:
                    yield node, char


class ActiveSet:
    """Which processors hold resting characters, and when the next is due.

    ``live`` is the plain set of nodes with a non-empty outbox (the engine
    exposes it as ``engine._live`` for the invariant sweeps).  The due-heap
    is lazily invalidated: an entry may be stale (the node drained or went
    idle since the push), which costs one wasted pop, never a missed event.

    Long dynamic runs push far more entries than they pop in order, so the
    heap is **compacted** whenever the stale entries outnumber the live
    nodes two to one: only the earliest recorded entry per live node
    survives.  That entry is at or before the node's true next due tick
    (the truth was pushed at the node's latest update), so compaction keeps
    the no-missed-event guarantee and merely trades the dead weight for at
    most one extra empty drain per node.
    """

    __slots__ = ("live", "_due")

    #: Compaction trigger: heap longer than both this floor and twice the
    #: live set.  The floor keeps tiny simulations from compacting a
    #: 10-entry heap every tick.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self.live: set[int] = set()
        self._due: list[tuple[int, int]] = []  # (due_tick, node)

    def update(self, node: int, next_due: int | None) -> None:
        """Record ``node``'s outbox state after a drain."""
        if next_due is None:
            self.live.discard(node)
        else:
            self.live.add(node)
            due = self._due
            heappush(due, (next_due, node))
            if len(due) > self.COMPACT_MIN and len(due) > 2 * len(self.live):
                self._compact()

    def _compact(self) -> None:
        """Drop stale heap entries, keeping the earliest per live node."""
        live = self.live
        best: dict[int, int] = {}
        for due_tick, node in self._due:
            if node in live:
                cur = best.get(node)
                if cur is None or due_tick < cur:
                    best[node] = due_tick
        self._due = [(due_tick, node) for node, due_tick in best.items()]
        heapify(self._due)

    def take_due(self, tick: int) -> set[int]:
        """Pop and return every node with a (possibly stale) entry due by ``tick``."""
        due: set[int] = set()
        heap = self._due
        while heap and heap[0][0] <= tick:
            due.add(heappop(heap)[1])
        return due

    def next_due(self) -> int | None:
        """Earliest recorded due tick, or ``None``.

        May be stale (earlier than the true next due tick); the engine
        tolerates that with one empty drain pass.
        """
        return self._due[0][0] if self._due else None

    def clear(self) -> None:
        """Forget every live node and due entry (engine reuse).

        Clears ``live`` in place — the engine aliases it as ``_live`` and
        the invariant sweeps read that alias directly.
        """
        self.live.clear()
        self._due.clear()

    def __bool__(self) -> bool:
        return bool(self.live)


def build_dispatch_tables(
    processors: list["Processor"],
) -> list[dict[str, Callable[[int, Char], None]]]:
    """Precompute one handler table per processor, keyed by character kind.

    Processors that do not publish a table (the base
    :meth:`~repro.sim.processor.Processor.handler_table` returns an empty
    dict) fall back to their ``handle`` method in the delivery loop.
    """
    return [proc.handler_table() for proc in processors]
