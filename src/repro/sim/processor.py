"""Processor base class: residence queues and the step contract.

A processor is a finite-state automaton.  Within one global clock tick it
(1) reads the characters arriving on its in-ports, (2) updates its state,
(3) prepares outputs (paper §1.1).  The *speed* mechanism of §2.1 is
implemented with an **outbox**: handling a character queues its onward copy
``residence - 1`` ticks in the future; the engine then puts it on the wire
for one tick.  A character arriving at tick ``t`` therefore reaches the next
processor at ``t + 3`` (speed-1) or ``t + 1`` (speed-3).

Crucially the outbox models the character *resting inside the processor*:
a KILL token arriving mid-residence can purge queued growing-snake
characters (:meth:`purge_outbox`), which is exactly how the paper's KILL
token "completely eradicates all traces of growing snake characters".

Subclasses implement :meth:`handle` (one character) and may override
:meth:`on_start` (the root's nudge out of quiescence).  They must also
implement :meth:`state_snapshot` so the finite-state audit
(:mod:`repro.sim.audit`) can verify that live state is bounded by a function
of ``delta`` alone.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.sim.characters import SPEED3_KINDS, Char

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import NodeContext

__all__ = ["Processor", "OutboxEntry"]


class OutboxEntry:
    """A character resting in the processor, due to leave at ``due_tick``."""

    __slots__ = ("due_tick", "out_port", "char", "seq")

    def __init__(self, due_tick: int, out_port: int, char: Char, seq: int) -> None:
        self.due_tick = due_tick
        self.out_port = out_port
        self.char = char
        self.seq = seq

    def __lt__(self, other: "OutboxEntry") -> bool:
        # (due_tick, seq) order, so a drain sorts entries with a plain
        # ``list.sort()`` — no key function per entry.  seq is unique per
        # processor, so the comparison is total.
        if self.due_tick != other.due_tick:
            return self.due_tick < other.due_tick
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OutboxEntry(due={self.due_tick}, port={self.out_port}, char={self.char})"


class Processor(ABC):
    """Base class for all processors attached to an :class:`Engine`."""

    #: Subclasses whose :meth:`purge_outbox` predicates only ever match
    #: growing-snake characters (the paper's KILL discipline) set this to
    #: True; it licenses an engine backend to schedule never-purgeable
    #: characters straight into its delivery queue at send time instead of
    #: resting them in the outbox.  Timing is identical either way — the
    #: arrival tick is fully determined at queueing — but a processor that
    #: might purge arbitrary kinds must keep everything purgeable at rest.
    PURGES_ONLY_GROWING = False

    #: Subclasses whose hot transitions are exactly the protocol automaton
    #: lowered into the character kernel's transition tables (the §2.3.2
    #: growing relay and §2.3.3 dying stream over the GrowingMarks /
    #: DyingRelay register file) set this to True; it licenses the
    #: flat-core backend to walk ``CharKernel.trans_rows`` for this node's
    #: deliveries, with every non-lowered configuration escaping back to
    #: the handler path.  A processor with extra register state that the
    #: phase encoding cannot see must leave it False.
    TABLE_AUTOMATON = False

    def __init__(self) -> None:
        self.ctx: "NodeContext | None" = None
        self._outbox: list[OutboxEntry] = []
        self._next_due: int | None = None  # min due_tick over _outbox
        self._max_due = 0                  # max due_tick over _outbox
        self._seq = 0
        self._tick = 0
        #: engine-installed fast path (flat-core backend): called as
        #: ``sink(out_port, char, arrival_tick)``; returns False to decline
        #: (the send then rests in the outbox).
        self._direct_sink: Callable[[int, Char, int], bool] | None = None
        #: engine-installed companion to the sink: purges this processor's
        #: directly-scheduled characters that are still purgeable (i.e.
        #: would still be resting here under outbox semantics).
        self._purge_hook: Callable[[Callable[[Char], bool]], int] | None = None
        #: batched sink for broadcasts: ``(ports, char, arrival) -> bool``,
        #: one call schedules the character through every port.
        self._direct_broadcast: Callable[[tuple, Char, int], bool] | None = None

    # ------------------------------------------------------------------
    # engine plumbing
    # ------------------------------------------------------------------
    def attach(self, ctx: "NodeContext") -> None:
        """Called once by the engine before the simulation starts."""
        self.ctx = ctx
        # the attaching engine installs its own (or none)
        self._direct_sink = None
        self._purge_hook = None
        self._direct_broadcast = None

    def reset(self) -> None:
        """Restore power-on state in place (engine reuse).

        Re-runs ``__init__`` on this very instance — every processor in the
        stack is no-arg constructible, and keeping the instance (rather
        than swapping in a new one) is what lets the engine's precomputed
        dispatch tables and per-node fast-path closures survive a reset:
        they hold bound methods of, and references to, *this* object.  The
        wiring context is re-attached afterwards (``attach`` also clears
        the engine-installed fast paths; the resetting engine re-installs
        its own).
        """
        ctx = self.ctx
        type(self).__init__(self)
        if ctx is not None:
            self.attach(ctx)

    def begin_tick(self, tick: int) -> None:
        """Engine hook: set the current tick before handlers run."""
        self._tick = tick

    def handler_table(self) -> dict[str, Callable[[int, Char], None]]:
        """Per-kind handler dispatch table for the scheduler core.

        The engine precomputes one table per processor at attach time
        (:func:`repro.sim.scheduler.build_dispatch_tables`); the delivery
        loop then jumps ``table[char.kind]`` straight to a bound handler.
        The base implementation publishes nothing, so every character falls
        back to :meth:`handle` — subclasses with a closed character set
        (notably :class:`~repro.protocol.automaton.ProtocolProcessor`)
        override this to skip their dispatch chain.
        """
        return {}

    def code_handler_table(self, kernel, chars, csend, cbroadcast):
        """Code-indexed handler list for a code-space engine backend.

        A backend that keeps deliveries as small-int character codes (the
        flat core) calls this at attach time with the compile-time
        :class:`~repro.sim.characters.CharKernel`, the interner's
        code→``Char`` list, and two code-space emitters — ``csend(out_port,
        code, arrival_tick)`` and ``cbroadcast(code, arrival_tick)`` — that
        schedule straight into its delivery queue.  The return value is a
        list indexed by character code whose entries are ``handler(in_port,
        code)`` callables or ``None`` (``None`` means: decode the character
        and take the object path for that delivery).  Returning ``None``
        instead of a table opts the whole processor out.  The base class
        publishes no table.
        """
        return None

    def drain_due(self, tick: int) -> list[OutboxEntry]:
        """Remove and return outbox entries due at or before ``tick``."""
        outbox = self._outbox
        if not outbox or (self._next_due is not None and self._next_due > tick):
            return []
        if self._max_due <= tick:
            # Fast path (the overwhelmingly common case): everything leaves.
            # No per-entry filtering, no min() recomputation over the rest.
            self._outbox = []
            self._next_due = None
            if len(outbox) > 1:
                outbox.sort()  # OutboxEntry orders by (due_tick, seq)
            return outbox
        due: list[OutboxEntry] = []
        keep: list[OutboxEntry] = []
        for e in outbox:
            (due if e.due_tick <= tick else keep).append(e)
        if due:
            self._outbox = keep
            self._next_due = min(e.due_tick for e in keep) if keep else None
            if len(due) > 1:
                due.sort()
        return due

    def has_pending_output(self) -> bool:
        """Whether any character is resting in this processor."""
        return bool(self._outbox)

    def next_due_tick(self) -> int | None:
        """Earliest outbox due tick, or ``None`` when the outbox is empty."""
        return self._next_due

    # ------------------------------------------------------------------
    # API for subclasses
    # ------------------------------------------------------------------
    def send(self, out_port: int, char: Char, *, extra_delay: int = 0) -> None:
        """Queue ``char`` to leave through ``out_port``.

        The character departs after its residence (minus the one tick the
        wire takes), so the neighbour receives it ``residence(char) +
        extra_delay`` ticks after now.  ``extra_delay`` implements "during
        the *next* time step" phrasing in the paper (e.g. the tail follows
        the head one tick later).
        """
        kind = char.kind
        due = self._tick + (0 if kind in SPEED3_KINDS else 2) + extra_delay
        sink = self._direct_sink
        if sink is not None and sink(out_port, char, due + 1):
            return
        self._queue(out_port, char, due)

    def _queue(self, out_port: int, char: Char, due: int) -> None:
        """Rest ``char`` in the outbox until ``due``."""
        self._outbox.append(OutboxEntry(due, out_port, char, self._seq))
        self._seq += 1
        if self._next_due is None or due < self._next_due:
            self._next_due = due
        if due > self._max_due:
            self._max_due = due

    def broadcast(self, char: Char, *, extra_delay: int = 0) -> None:
        """Send ``char`` through every connected out-port."""
        assert self.ctx is not None
        due = self._tick + (0 if char.kind in SPEED3_KINDS else 2) + extra_delay
        many = self._direct_broadcast
        if many is not None and many(self.ctx.out_ports, char, due + 1):
            return
        for port in self.ctx.out_ports:
            self._queue(port, char, due)

    def purge_outbox(self, predicate: Callable[[Char], bool]) -> int:
        """Erase resting characters matching ``predicate``; return count.

        This is the KILL token's "eradicate all traces ... characters"
        action applied to characters currently resting in this processor.
        With an engine-installed direct sink, "resting here" extends to the
        characters the sink has pre-scheduled whose departure tick has not
        yet passed — the purge hook erases those from the delivery queue,
        so timing-observable behaviour is identical to outbox residence.
        """
        before = len(self._outbox)
        self._outbox = [e for e in self._outbox if not predicate(e.char)]
        if self._outbox:
            self._next_due = min(e.due_tick for e in self._outbox)
            self._max_due = max(e.due_tick for e in self._outbox)
        else:
            self._next_due = None
            self._max_due = 0
        removed = before - len(self._outbox)
        hook = self._purge_hook
        if hook is not None:
            removed += hook(predicate)
        return removed

    def outbox_chars(self) -> Iterable[Char]:
        """The characters currently resting here (for invariant checks)."""
        return (e.char for e in self._outbox)

    # ------------------------------------------------------------------
    # behaviour contract
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Nudge out of quiescence by the outside source (root only)."""

    @abstractmethod
    def handle(self, in_port: int, char: Char) -> None:
        """Process one character that arrived this tick through ``in_port``."""

    @abstractmethod
    def state_snapshot(self) -> dict[str, Any]:
        """A picture of every state register, for the finite-state audit.

        Must include everything the automaton remembers between ticks
        *except* the outbox (audited separately) and the immutable wiring
        context.
        """

    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """The current global clock tick."""
        return self._tick
