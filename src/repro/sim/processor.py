"""Processor base class: residence queues and the step contract.

A processor is a finite-state automaton.  Within one global clock tick it
(1) reads the characters arriving on its in-ports, (2) updates its state,
(3) prepares outputs (paper §1.1).  The *speed* mechanism of §2.1 is
implemented with an **outbox**: handling a character queues its onward copy
``residence - 1`` ticks in the future; the engine then puts it on the wire
for one tick.  A character arriving at tick ``t`` therefore reaches the next
processor at ``t + 3`` (speed-1) or ``t + 1`` (speed-3).

Crucially the outbox models the character *resting inside the processor*:
a KILL token arriving mid-residence can purge queued growing-snake
characters (:meth:`purge_outbox`), which is exactly how the paper's KILL
token "completely eradicates all traces of growing snake characters".

Subclasses implement :meth:`handle` (one character) and may override
:meth:`on_start` (the root's nudge out of quiescence).  They must also
implement :meth:`state_snapshot` so the finite-state audit
(:mod:`repro.sim.audit`) can verify that live state is bounded by a function
of ``delta`` alone.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.sim.characters import Char, residence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import NodeContext

__all__ = ["Processor", "OutboxEntry"]


class OutboxEntry:
    """A character resting in the processor, due to leave at ``due_tick``."""

    __slots__ = ("due_tick", "out_port", "char", "seq")

    def __init__(self, due_tick: int, out_port: int, char: Char, seq: int) -> None:
        self.due_tick = due_tick
        self.out_port = out_port
        self.char = char
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OutboxEntry(due={self.due_tick}, port={self.out_port}, char={self.char})"


class Processor(ABC):
    """Base class for all processors attached to an :class:`Engine`."""

    def __init__(self) -> None:
        self.ctx: "NodeContext | None" = None
        self._outbox: list[OutboxEntry] = []
        self._next_due: int | None = None  # min due_tick over _outbox
        self._seq = 0
        self._tick = 0

    # ------------------------------------------------------------------
    # engine plumbing
    # ------------------------------------------------------------------
    def attach(self, ctx: "NodeContext") -> None:
        """Called once by the engine before the simulation starts."""
        self.ctx = ctx

    def begin_tick(self, tick: int) -> None:
        """Engine hook: set the current tick before handlers run."""
        self._tick = tick

    def handler_table(self) -> dict[str, Callable[[int, Char], None]]:
        """Per-kind handler dispatch table for the scheduler core.

        The engine precomputes one table per processor at attach time
        (:func:`repro.sim.scheduler.build_dispatch_tables`); the delivery
        loop then jumps ``table[char.kind]`` straight to a bound handler.
        The base implementation publishes nothing, so every character falls
        back to :meth:`handle` — subclasses with a closed character set
        (notably :class:`~repro.protocol.automaton.ProtocolProcessor`)
        override this to skip their dispatch chain.
        """
        return {}

    def drain_due(self, tick: int) -> list[OutboxEntry]:
        """Remove and return outbox entries due at or before ``tick``."""
        outbox = self._outbox
        if not outbox or (self._next_due is not None and self._next_due > tick):
            return []
        due: list[OutboxEntry] = []
        keep: list[OutboxEntry] = []
        for e in outbox:
            (due if e.due_tick <= tick else keep).append(e)
        if due:
            self._outbox = keep
            self._next_due = min(e.due_tick for e in keep) if keep else None
            if len(due) > 1:
                # appended in seq order, so a stable sort on due_tick alone
                # reproduces the (due_tick, seq) order
                due.sort(key=lambda e: e.due_tick)
        return due

    def has_pending_output(self) -> bool:
        """Whether any character is resting in this processor."""
        return bool(self._outbox)

    def next_due_tick(self) -> int | None:
        """Earliest outbox due tick, or ``None`` when the outbox is empty."""
        return self._next_due

    # ------------------------------------------------------------------
    # API for subclasses
    # ------------------------------------------------------------------
    def send(self, out_port: int, char: Char, *, extra_delay: int = 0) -> None:
        """Queue ``char`` to leave through ``out_port``.

        The character departs after its residence (minus the one tick the
        wire takes), so the neighbour receives it ``residence(char) +
        extra_delay`` ticks after now.  ``extra_delay`` implements "during
        the *next* time step" phrasing in the paper (e.g. the tail follows
        the head one tick later).
        """
        due = self._tick + residence(char) - 1 + extra_delay
        self._outbox.append(OutboxEntry(due, out_port, char, self._seq))
        self._seq += 1
        if self._next_due is None or due < self._next_due:
            self._next_due = due

    def broadcast(self, char: Char, *, extra_delay: int = 0) -> None:
        """Send ``char`` through every connected out-port."""
        assert self.ctx is not None
        for port in self.ctx.out_ports:
            self.send(port, char, extra_delay=extra_delay)

    def purge_outbox(self, predicate: Callable[[Char], bool]) -> int:
        """Erase resting characters matching ``predicate``; return count.

        This is the KILL token's "eradicate all traces ... characters"
        action applied to characters currently resting in this processor.
        """
        before = len(self._outbox)
        self._outbox = [e for e in self._outbox if not predicate(e.char)]
        self._next_due = (
            min(e.due_tick for e in self._outbox) if self._outbox else None
        )
        return before - len(self._outbox)

    def outbox_chars(self) -> Iterable[Char]:
        """The characters currently resting here (for invariant checks)."""
        return (e.char for e in self._outbox)

    # ------------------------------------------------------------------
    # behaviour contract
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Nudge out of quiescence by the outside source (root only)."""

    @abstractmethod
    def handle(self, in_port: int, char: Char) -> None:
        """Process one character that arrived this tick through ``in_port``."""

    @abstractmethod
    def state_snapshot(self) -> dict[str, Any]:
        """A picture of every state register, for the finite-state audit.

        Must include everything the automaton remembers between ticks
        *except* the outbox (audited separately) and the immutable wiring
        context.
        """

    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """The current global clock tick."""
        return self._tick
