"""The synchronous engine: global clock, wires, deterministic delivery.

Per tick the engine:

1. delivers every character scheduled to arrive now, invoking each
   receiving processor's handlers in a fixed priority order (KILL/UNMARK
   first, then dying snakes, then growing snakes, then tokens; ties by
   in-port then FIFO) — the deterministic refinement of the paper's
   "read inputs, process state change, broadcast outputs";
2. drains due outbox entries onto wires (arrival next tick);
3. records the root's I/O into the :class:`~repro.sim.transcript.Transcript`.

Only *active* processors (those receiving characters or holding a non-empty
outbox) cost any work, so an `O(N*D)`-tick protocol whose activity is
localized simulates in time proportional to total character-hops, not
``ticks * N``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable

from repro.errors import SimulationError, TickBudgetExceeded
from repro.sim.characters import Char, is_dying, is_growing
from repro.sim.metrics import TrafficMetrics
from repro.sim.processor import Processor
from repro.sim.transcript import Transcript
from repro.topology.portgraph import PortGraph

__all__ = ["NodeContext", "Engine"]


class NodeContext:
    """Immutable wiring knowledge handed to a processor at attach time.

    Models in-port and out-port *awareness* (paper §1.2.1): the processor
    knows which of its ports carry wires, and whether it is the root —
    nothing else about the network.
    """

    __slots__ = ("node", "is_root", "in_ports", "out_ports", "_pipe")

    def __init__(
        self,
        node: int,
        is_root: bool,
        in_ports: tuple[int, ...],
        out_ports: tuple[int, ...],
        pipe: Callable[[str, tuple], None],
    ) -> None:
        self.node = node
        self.is_root = is_root
        self.in_ports = in_ports
        self.out_ports = out_ports
        self._pipe = pipe

    def pipe(self, label: str, *data: Any) -> None:
        """Pipe a constant-size status record to the master computer.

        Only meaningful at the root (the paper's root streams its
        computational transcript to its master computer); pipes from
        non-root processors are discarded.
        """
        self._pipe(label, tuple(data))


def _priority(char: Char) -> int:
    """In-tick handling priority; lower handles first.

    KILL/UNMARK must be seen before growing characters arriving the same
    tick so the speed-3 catch-up argument (Lemma 4.2) is exact.  Dying
    characters outrank growing ones so loop marking is never raced by the
    flood it is about to clean up.
    """
    if char.kind in ("KILL", "UNMARK"):
        return 0
    if is_dying(char):
        return 1
    if is_growing(char):
        return 2
    return 3  # DFS / FWD / BACK / BDONE


class Engine:
    """Simulate ``processors`` on ``graph`` with a shared global clock.

    Args:
        graph: the (frozen) network wiring.
        processors: one :class:`Processor` per node.
        root: the processor nudged out of quiescence by the outside source.
        record_transcript: whether to record the root's I/O (cheap; on by
            default because the master computer needs it).
    """

    def __init__(
        self,
        graph: PortGraph,
        processors: list[Processor],
        root: int = 0,
        *,
        record_transcript: bool = True,
    ) -> None:
        if not graph.frozen:
            raise SimulationError("engine requires a frozen PortGraph")
        if len(processors) != graph.num_nodes:
            raise SimulationError(
                f"need {graph.num_nodes} processors, got {len(processors)}"
            )
        if not 0 <= root < graph.num_nodes:
            raise SimulationError(f"root {root} out of range")
        self.graph = graph
        self.processors = processors
        self.root = root
        self.tick = 0
        self.transcript = Transcript(enabled=record_transcript)
        self.metrics = TrafficMetrics()
        #: optional omniscient tracer (see :mod:`repro.sim.tracer`)
        self.tracer = None
        # pending[t] -> node -> list of (in_port, char, seq) arriving at t
        self._pending: dict[int, dict[int, list[tuple[int, Char, int]]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self._arrival_seq = 0
        self._live: set[int] = set()  # nodes with a non-empty outbox
        for node, proc in enumerate(processors):
            proc.attach(
                NodeContext(
                    node=node,
                    is_root=(node == root),
                    in_ports=graph.connected_in_ports(node),
                    out_ports=graph.connected_out_ports(node),
                    pipe=(self._root_pipe if node == root else _discard_pipe),
                )
            )

    # ------------------------------------------------------------------
    def _root_pipe(self, label: str, data: tuple) -> None:
        self.transcript.record_pipe(self.tick, label, data)

    def start(self) -> None:
        """Deliver the outside source's nudge to the root (tick 0)."""
        root_proc = self.processors[self.root]
        root_proc.begin_tick(self.tick)
        root_proc.on_start()
        self._drain_node(self.root)

    def wake(self, node: int) -> None:
        """Register externally-triggered activity at ``node``.

        Harness hook used by the scripted single-RCA/BCA drivers: after
        calling a method on a processor directly (outside character
        delivery), the engine must know its outbox may be non-empty.
        Characters already due leave immediately, exactly as they would
        have had the trigger been a delivered character.
        """
        self._drain_node(node)

    def _drain_node(self, node: int) -> None:
        proc = self.processors[node]
        for entry in proc.drain_due(self.tick):
            self._put_on_wire(node, entry.out_port, entry.char)
        if proc.has_pending_output():
            self._live.add(node)
        else:
            self._live.discard(node)

    def step_tick(self) -> None:
        """Advance the global clock by one tick."""
        self.tick += 1
        arrivals = self._pending.pop(self.tick, None)

        touched: set[int] = set()
        if arrivals:
            for node, items in arrivals.items():
                proc = self.processors[node]
                proc.begin_tick(self.tick)
                touched.add(node)
                items.sort(key=lambda it: (_priority(it[1]), it[0], it[2]))
                for in_port, char, _ in items:
                    if node == self.root:
                        self.transcript.record_recv(self.tick, in_port, char)
                    self.metrics.count_delivery(char)
                    if self.tracer is not None:
                        self.tracer.record_delivery(self.tick, node, in_port, char)
                    proc.handle(in_port, char)

        # Drain outboxes of every node that might have a due entry.
        for node in list(self._live | touched):
            self._drain_node(node)

    def _put_on_wire(self, node: int, out_port: int, char: Char) -> None:
        wire = self.graph.out_wire(node, out_port)
        if wire is None:
            raise SimulationError(
                f"node {node} emitted {char} through unconnected out-port {out_port}"
            )
        if node == self.root:
            self.transcript.record_send(self.tick, out_port, char)
        self.metrics.count_emission(char)
        if self.tracer is not None:
            self.tracer.record_emission(self.tick, node, out_port, char)
        self._pending[self.tick + 1][wire.dst].append(
            (wire.in_port, char, self._arrival_seq)
        )
        self._arrival_seq += 1

    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        """No characters anywhere: resting, on wires, or scheduled."""
        return not self._live and not self._pending

    def run(
        self,
        *,
        max_ticks: int,
        until: Callable[[], bool] | None = None,
        start: bool = True,
    ) -> int:
        """Run until ``until()`` is true or the network goes idle.

        Returns the tick at which the condition first held.  Raises
        :class:`TickBudgetExceeded` if ``max_ticks`` elapse first — the
        liveness watchdog every test and benchmark runs under.
        """
        if start:
            self.start()
        while self.tick < max_ticks:
            if until is not None and until():
                return self.tick
            if until is None and self.is_idle() and self.tick > 0:
                return self.tick
            self.step_tick()
        if until is not None and until():
            return self.tick
        raise TickBudgetExceeded(max_ticks)

    def run_to_idle(self, *, max_ticks: int) -> int:
        """Run until no character remains anywhere (cleanup drain)."""
        while self.tick < max_ticks:
            if self.is_idle():
                return self.tick
            self.step_tick()
        raise TickBudgetExceeded(max_ticks)

    # ------------------------------------------------------------------
    def in_flight_chars(self) -> Iterable[tuple[int, Char]]:
        """All characters on wires or resting, as ``(destination/holder, char)``.

        Used by the Lemma 4.2 cleanup invariant checks.
        """
        for _, per_node in self._pending.items():
            for node, items in per_node.items():
                for _, char, _ in items:
                    yield node, char
        for node in self._live:
            for char in self.processors[node].outbox_chars():
                yield node, char


def _discard_pipe(label: str, data: tuple) -> None:
    """Pipes from non-root processors go nowhere (they have no computer)."""
