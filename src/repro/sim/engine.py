"""Layer 1 front door — the synchronous engine on top of the scheduler core.

The simulation stack is layered:

1. **Scheduler core** (:mod:`repro.sim.scheduler`): the event wheel
   (timestamp-bucketed delivery queue), active-set tracking of processors
   with resting characters, precomputed per-kind handling priorities and
   per-processor handler dispatch tables.
2. **Run orchestration** (:mod:`repro.sim.run`): the shared
   :class:`~repro.sim.run.RunConfig`/:class:`~repro.sim.run.RunResult`
   pair every front-end (``protocol.runner``, ``dynamics.experiment``, the
   scripted RCA/BCA drivers) executes runs through.
3. **Campaigns** (:mod:`repro.campaigns`): declarative scenario matrices
   fanned out over worker processes.

This module is the engine itself: the global clock, the wires, and the
deterministic delivery semantics of the paper.  Per tick the engine:

1. delivers every character scheduled to arrive now, invoking each
   receiving processor's handlers in a fixed priority order (KILL/UNMARK
   first, then dying snakes, then growing snakes, then tokens; ties by
   in-port then FIFO) — the deterministic refinement of the paper's
   "read inputs, process state change, broadcast outputs";
2. drains due outbox entries onto wires (arrival next tick);
3. records the root's I/O into the :class:`~repro.sim.transcript.Transcript`.

Only processors with arrivals or due outbox entries cost any work on a
tick, and :meth:`Engine.run` fast-forwards the clock across ticks on which
provably nothing can happen (no arrival scheduled, no outbox entry due), so
an ``O(N*D)``-tick protocol whose activity is localized simulates in time
proportional to total character-hops — not ``ticks * N``.  Timing stays
tick-exact: every delivery, drain and transcript record happens at exactly
the tick it would have without the fast-forward.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from repro.errors import SimulationError, TickBudgetExceeded
from repro.sim.characters import Char
from repro.sim.metrics import TrafficMetrics
from repro.sim.processor import Processor
from repro.sim.scheduler import ActiveSet, EventWheel, build_dispatch_tables
from repro.sim.transcript import Transcript
from repro.topology.portgraph import PortGraph, Wire

__all__ = ["NodeContext", "Engine"]


class NodeContext:
    """Immutable wiring knowledge handed to a processor at attach time.

    Models in-port and out-port *awareness* (paper §1.2.1): the processor
    knows which of its ports carry wires, and whether it is the root —
    nothing else about the network.
    """

    __slots__ = ("node", "is_root", "in_ports", "out_ports", "_pipe")

    def __init__(
        self,
        node: int,
        is_root: bool,
        in_ports: tuple[int, ...],
        out_ports: tuple[int, ...],
        pipe: Callable[[str, tuple], None],
    ) -> None:
        self.node = node
        self.is_root = is_root
        self.in_ports = in_ports
        self.out_ports = out_ports
        self._pipe = pipe

    def pipe(self, label: str, *data: Any) -> None:
        """Pipe a constant-size status record to the master computer.

        Only meaningful at the root (the paper's root streams its
        computational transcript to its master computer); pipes from
        non-root processors are discarded.
        """
        self._pipe(label, tuple(data))


class Engine:
    """Simulate ``processors`` on ``graph`` with a shared global clock.

    Args:
        graph: the (frozen) network wiring.
        processors: one :class:`Processor` per node.
        root: the processor nudged out of quiescence by the outside source.
        record_transcript: whether to record the root's I/O (cheap; on by
            default because the master computer needs it).
    """

    #: Whether construction precomputes the per-processor kind-dispatch
    #: tables.  This engine's own delivery loop indexes them every tick, so
    #: they are built eagerly here; a backend whose hot loop dispatches on
    #: character codes instead (the flat core) sets this False and resolves
    #: handler tables per node on first fallback delivery.
    EAGER_DISPATCH = True

    def __init__(
        self,
        graph: PortGraph,
        processors: list[Processor],
        root: int = 0,
        *,
        record_transcript: bool = True,
    ) -> None:
        if not graph.frozen:
            raise SimulationError("engine requires a frozen PortGraph")
        if len(processors) != graph.num_nodes:
            raise SimulationError(
                f"need {graph.num_nodes} processors, got {len(processors)}"
            )
        if not 0 <= root < graph.num_nodes:
            raise SimulationError(f"root {root} out of range")
        self.graph = graph
        self.processors = processors
        self.root = root
        self.tick = 0
        self.transcript = Transcript(enabled=record_transcript)
        self.metrics = TrafficMetrics()
        #: optional omniscient tracer (see :mod:`repro.sim.tracer`)
        self.tracer = None
        self._wheel = EventWheel()
        self._active = ActiveSet()
        #: nodes with a non-empty outbox (shared with the active set; the
        #: invariant sweeps read it directly)
        self._live: set[int] = self._active.live
        # wiring lookup precomputed off the frozen graph: node -> {out_port: Wire}
        self._out_wires: list[dict[int, Wire]] = [{} for _ in range(graph.num_nodes)]
        for wire in graph.wires():
            self._out_wires[wire.src][wire.out_port] = wire
        for node, proc in enumerate(processors):
            proc.attach(
                NodeContext(
                    node=node,
                    is_root=(node == root),
                    in_ports=graph.connected_in_ports(node),
                    out_ports=graph.connected_out_ports(node),
                    pipe=(self._root_pipe if node == root else _discard_pipe),
                )
            )
        self._dispatch = build_dispatch_tables(processors) if self.EAGER_DISPATCH else None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Restore power-on state without rebuilding any derived table.

        After ``reset()`` a run is observationally identical to one on a
        freshly-constructed engine over the same graph and processor types
        (the engine-reuse parity suite enforces byte-identical transcripts,
        ticks and metrics).  What survives: the wiring lookup tables, the
        per-processor dispatch tables, and the wheel's recycled free pools
        — i.e. everything that is a pure function of (graph, processor
        types).  The transcript and metrics are *rebound* to fresh objects,
        never cleared in place, so results captured from a previous run
        stay intact when the engine is reused through an
        :class:`~repro.sim.run.EnginePool`.
        """
        self.tick = 0
        self.transcript = Transcript(enabled=self.transcript.enabled)
        self.metrics = TrafficMetrics()
        self.tracer = None
        self._wheel.clear()
        self._active.clear()
        for proc in self.processors:
            proc.reset()

    # ------------------------------------------------------------------
    def _root_pipe(self, label: str, data: tuple) -> None:
        self.transcript.record_pipe(self.tick, label, data)

    def start(self) -> None:
        """Deliver the outside source's nudge to the root (tick 0)."""
        root_proc = self.processors[self.root]
        root_proc.begin_tick(self.tick)
        root_proc.on_start()
        self._drain_node(self.root)

    def wake(self, node: int) -> None:
        """Register externally-triggered activity at ``node``.

        Harness hook used by the scripted single-RCA/BCA drivers: after
        calling a method on a processor directly (outside character
        delivery), the engine must know its outbox may be non-empty.
        Characters already due leave immediately, exactly as they would
        have had the trigger been a delivered character.
        """
        self._drain_node(node)

    def _drain_node(self, node: int) -> None:
        proc = self.processors[node]
        entries = proc.drain_due(self.tick)
        if entries:
            put = self._put_on_wire
            for entry in entries:
                put(node, entry.out_port, entry.char)
        self._active.update(node, proc.next_due_tick())

    def step_tick(self) -> None:
        """Advance the global clock by exactly one tick."""
        self.tick += 1
        tick = self.tick
        arrivals = self._wheel.pop(tick)

        if arrivals:
            processors = self.processors
            dispatch_tables = self._dispatch
            root = self.root
            tracer = self.tracer
            delivered = self.metrics.delivered
            for node, items in arrivals.items():
                proc = processors[node]
                proc.begin_tick(tick)
                if len(items) > 1:
                    # plain tuple sort: (priority, in_port, seq, char); seq
                    # is unique so the comparison never reaches the char
                    items.sort()
                dispatch = dispatch_tables[node]
                fallback = proc.handle
                is_root = node == root
                for _, in_port, _, char in items:
                    if is_root:
                        self.transcript.record_recv(tick, in_port, char)
                    delivered[char.kind] += 1
                    if tracer is not None:
                        tracer.record_delivery(tick, node, in_port, char)
                    handler = dispatch.get(char.kind)
                    if handler is None:
                        fallback(in_port, char)
                    else:
                        handler(in_port, char)

        # Drain outboxes with due entries, plus every node touched above
        # (its handlers may have queued immediately-due output).
        due = self._active.take_due(tick)
        if arrivals:
            due.update(arrivals)
        for node in due:
            self._drain_node(node)
        if arrivals:
            self._wheel.recycle(arrivals)

    def _put_on_wire(self, node: int, out_port: int, char: Char) -> None:
        wire = self._out_wires[node].get(out_port)
        if wire is None:
            raise SimulationError(
                f"node {node} emitted {char} through unconnected out-port {out_port}"
            )
        # inline of _emit — this is the hottest emission path
        if node == self.root:
            self.transcript.record_send(self.tick, out_port, char)
        self.metrics.emitted[char.kind] += 1
        if self.tracer is not None:
            self.tracer.record_emission(self.tick, node, out_port, char)
        self._wheel.schedule(self.tick + 1, wire.dst, wire.in_port, char)

    def _emit(self, wire: Wire, node: int, out_port: int, char: Char) -> None:
        """Account for ``char`` leaving ``node`` and schedule its arrival.

        Kept as a separate helper for engine subclasses that route
        emissions over wires outside the frozen base graph (the dynamic
        engine's added wires); the base ``_put_on_wire`` inlines this.
        """
        if node == self.root:
            self.transcript.record_send(self.tick, out_port, char)
        self.metrics.emitted[char.kind] += 1
        if self.tracer is not None:
            self.tracer.record_emission(self.tick, node, out_port, char)
        self._wheel.schedule(self.tick + 1, wire.dst, wire.in_port, char)

    # ------------------------------------------------------------------
    def is_idle(self) -> bool:
        """No characters anywhere: resting, on wires, or scheduled."""
        return not self._live and not self._wheel

    def _next_event_tick(self) -> int | None:
        """The earliest future tick at which anything can happen.

        ``None`` means the network holds no scheduled arrival and no
        resting character — nothing will ever happen again without outside
        intervention.  Subclasses with external event sources (scheduled
        wire mutations) override this to bound the fast-forward.
        """
        wheel_tick = self._wheel.next_tick()
        due_tick = self._active.next_due()
        if wheel_tick is None:
            return due_tick
        if due_tick is None:
            return wheel_tick
        return min(wheel_tick, due_tick)

    _UNCOMPUTED = object()

    def _advance(self, max_ticks: int, nxt: int | None | object = _UNCOMPUTED) -> None:
        """Step to the next tick at which an event can occur.

        Fast-forwards the clock over provably-empty ticks; never advances
        past ``max_ticks``.  ``nxt`` lets :meth:`run` pass the
        ``_next_event_tick()`` it already computed for its dead-network
        check instead of scanning the wheel and drain queue twice per
        iteration.
        """
        if nxt is Engine._UNCOMPUTED:
            nxt = self._next_event_tick()
        if nxt is None:
            # Dead network: nothing to deliver or drain, ever.  Advance one
            # tick (matching the pre-scheduler engine) so idle detection and
            # budget accounting observe the same tick values as before.
            self.tick += 1
            return
        if nxt > self.tick + 1:
            self.tick = min(nxt, max_ticks) - 1
        self.step_tick()

    def run(
        self,
        *,
        max_ticks: int,
        until: Callable[[], bool] | None = None,
        start: bool = True,
    ) -> int:
        """Run until ``until()`` is true or the network goes idle.

        Returns the tick at which the condition first held.  Raises
        :class:`TickBudgetExceeded` if ``max_ticks`` elapse first — the
        liveness watchdog every test and benchmark runs under.

        ``until`` is evaluated at event boundaries (processor state can only
        change when a character is delivered, so nothing is missed).
        """
        if start:
            self.start()
        while self.tick < max_ticks:
            if until is not None and until():
                return self.tick
            if until is None and self.is_idle() and self.tick > 0:
                return self.tick
            nxt = self._next_event_tick()
            if until is not None and nxt is None:
                # Dead network under an ``until`` that has just evaluated
                # false: processor state only changes on delivery, and no
                # delivery is ever due again, so the predicate can never
                # flip.  Burn the remaining budget in one jump — the
                # watchdog below observes the same tick it would have
                # reached one dead tick at a time.
                self.tick = max_ticks
                break
            self._advance(max_ticks, nxt)
        if until is not None and until():
            return self.tick
        raise TickBudgetExceeded(max_ticks)

    def run_to_idle(self, *, max_ticks: int) -> int:
        """Run until no character remains anywhere (cleanup drain)."""
        while self.tick < max_ticks:
            if self.is_idle():
                return self.tick
            self._advance(max_ticks)
        if self.is_idle():
            return self.tick
        raise TickBudgetExceeded(max_ticks)

    # ------------------------------------------------------------------
    def in_flight_chars(self) -> Iterable[tuple[int, Char]]:
        """All characters on wires or resting, as ``(destination/holder, char)``.

        Used by the Lemma 4.2 cleanup invariant checks.
        """
        yield from self._wheel.in_flight()
        for node in self._live:
            for char in self.processors[node].outbox_chars():
                yield node, char


def _discard_pipe(label: str, data: tuple) -> None:
    """Pipes from non-root processors go nowhere (they have no computer)."""
