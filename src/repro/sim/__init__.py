"""Synchronous network simulator for finite-state processors.

Implements the paper's computational model (§1.1): a global clock, identical
processors, unidirectional wires carrying one constant-size character per
tick per logical stream, and the *speed* mechanism of §2.1 (a speed-1
construct rests 3 ticks in each processor, a speed-3 construct rests 1).

The simulator is deliberately event-driven about *activity* (quiescent
regions cost nothing) while remaining tick-exact about *timing*, which the
protocol's catch-up arguments (Lemma 4.2) depend on.
"""

from repro.sim.characters import (
    STAR,
    Char,
    alphabet_size,
    dying_family_of,
    growing_family_of,
    is_dying,
    is_growing,
    make_body,
    make_head,
    make_tail,
    residence,
    speed_of,
)
from repro.sim.engine import Engine, NodeContext
from repro.sim.processor import Processor
from repro.sim.run import RunConfig, RunResult, execute_run
from repro.sim.scheduler import ActiveSet, EventWheel, priority_of
from repro.sim.transcript import Transcript, TranscriptEvent
from repro.sim.metrics import TrafficMetrics
from repro.sim.audit import state_atom_count, assert_finite_state

__all__ = [
    "STAR",
    "Char",
    "alphabet_size",
    "speed_of",
    "residence",
    "is_growing",
    "is_dying",
    "growing_family_of",
    "dying_family_of",
    "make_head",
    "make_body",
    "make_tail",
    "Engine",
    "NodeContext",
    "Processor",
    "RunConfig",
    "RunResult",
    "execute_run",
    "ActiveSet",
    "EventWheel",
    "priority_of",
    "Transcript",
    "TranscriptEvent",
    "TrafficMetrics",
    "state_atom_count",
    "assert_finite_state",
]
