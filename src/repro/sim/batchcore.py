"""Lane-parallel batched flat backend: S scenarios in lock-step.

The campaign matrix is dominated by runs that differ **only in seed**:
same family, same size, same protocol, different fault program.  The
``batch`` backend runs S such scenarios — *lanes* — over one set of
shared compiled artifacts (the :class:`~repro.topology.compile.
CompiledTopology` CSR tables, the interned alphabet, the pre-shifted
in-port table), advancing all lanes in lock-step bursts driven by numpy
``int64`` lane registers laid out ``(S, ...)``:

* per-lane scheduler registers — state, clock, budget, error code,
  terminal tick — as ``(S,)`` vectors, so which lanes are live, which
  are due and which have exhausted their budget is decided with
  vectorized masks instead of S separate Python run loops;
* a per-lane per-code emission-counter matrix ``(S, num_codes)``,
  snapshotted at end of run for the campaign fan-out and the batch
  tests (the per-lane metrics flush).

The per-event protocol work inside a lane is exactly the flat backend's
— including its transition-table stepper, which every lane executes over
the one shared ``char_trans`` program (exposed here as a zero-copy numpy
tensor via :meth:`BatchLaneMixin.trans_tensor`, with ``(S,)`` cross-lane
row gathers through :meth:`BatchLaneMixin.gather_rows`): each lane owns
a :class:`~repro.sim.flatcore.FlatEngine` data plane (lane 0 is the
batch engine itself), so every decoded lane is **byte-identical** to a
solo ``flat`` run of the same scenario — the parity contract the
differential fuzz suite enforces.  What batching
buys is shared lowering, one pooled engine per (graph, lane count)
signature, vectorized lane scheduling, and — at the campaign layer —
the fusion of a chunk's seed axis so lanes with equal effective wire
programs share one simulation (:mod:`repro.campaigns.executor`).  The
shared tables themselves resolve through the two-tier
:func:`~repro.topology.compile.compiled_topology` cache, so with a warm
artifact library (:mod:`repro.store.artifacts`) all S lanes ride one
``mmap``-loaded, page-cache-shared table set that no process had to
compile.

numpy is an **optional** dependency (the ``[batch]`` extra).  This
module always imports; only constructing a batch engine requires numpy,
and :func:`repro.sim.run.check_backend` reports the missing extra with
an actionable message when the ``batch`` backend is requested without
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ProtocolViolation, ReproError
from repro.sim.characters import (
    KFLAG_BODY,
    KFLAG_DYING,
    KFLAG_GROWING,
    KFLAG_HEAD,
    KFLAG_SCOPE_BCA,
    KFLAG_SCOPE_RCA,
    KFLAG_SNAKE,
    KFLAG_SPEED3,
    KFLAG_TAIL,
    n_phases,
)
from repro.sim.flatcore import FlatEngine
from repro.sim.processor import Processor
from repro.topology.portgraph import PortGraph

try:  # pragma: no cover - exercised via have_numpy() in both states
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "have_numpy",
    "require_numpy",
    "TRAFFIC_CLASSES",
    "LaneTimelines",
    "LaneRun",
    "LaneOutcome",
    "BatchLaneMixin",
    "BatchEngine",
]

#: Column labels of :meth:`BatchLaneMixin.lane_traffic_classes`, each
#: backed by one ``KFLAG_*`` predicate bit of the compiled kernel's
#: ``char_flags`` table (see :mod:`repro.sim.characters`).
TRAFFIC_CLASSES = (
    "snake",
    "growing",
    "dying",
    "head",
    "body",
    "tail",
    "scope_rca",
    "scope_bca",
    "speed3",
)

_CLASS_BITS = (
    KFLAG_SNAKE,
    KFLAG_GROWING,
    KFLAG_DYING,
    KFLAG_HEAD,
    KFLAG_BODY,
    KFLAG_TAIL,
    KFLAG_SCOPE_RCA,
    KFLAG_SCOPE_BCA,
    KFLAG_SPEED3,
)

#: lane scheduler states (values of the ``(S,)`` state register)
LANE_RUNNING = 0
LANE_DRAINING = 1
LANE_DONE = 2

#: lane error codes (values of the ``(S,)`` error register)
ERR_NONE = 0
ERR_BUDGET = 1
ERR_PROTOCOL = 2

#: micro-steps a live lane advances per lock-step round.  Lanes are
#: independent, so the interleaving granularity cannot change results;
#: a burst amortizes the vectorized mask refresh over many event steps.
#: Measured on the campaign bench matrix: throughput climbs until ~1k
#: steps per burst (finer interleaving thrashes the per-lane working
#: sets) and is flat beyond it.
_BURST = 1024


def have_numpy() -> bool:
    """Whether the optional ``[batch]`` dependency is importable."""
    return _np is not None


def require_numpy() -> None:
    """Raise a :class:`ReproError` pointing at the extra when numpy is absent."""
    if _np is None:
        raise ReproError(
            "the 'batch' engine backend requires numpy, which is not "
            "installed; install the optional extra: "
            "pip install 'repro-topology[batch]'"
        )


@dataclass(frozen=True)
class LaneTimelines:
    """One wire program per lane, for batched dynamic construction.

    The engine pool's ``timeline`` argument is a single program for the
    scalar engines; wrapping a tuple of per-lane programs in this type
    tells :class:`~repro.dynamics.engine.BatchDynamicEngine` (and its
    ``reset``) to load ``programs[i]`` into lane ``i``.
    """

    programs: tuple

    def __len__(self) -> int:
        return len(self.programs)


def lane_timelines(timeline, lanes: int) -> tuple:
    """Normalize a pool ``timeline`` argument into per-lane programs."""
    if isinstance(timeline, LaneTimelines):
        if len(timeline) != lanes:
            raise ReproError(
                f"got {len(timeline)} lane timelines for {lanes} lanes"
            )
        return timeline.programs
    if lanes == 1:
        return (timeline,)
    raise ReproError(
        f"a {lanes}-lane dynamic batch engine needs a LaneTimelines with "
        "one program per lane"
    )


@dataclass(frozen=True)
class LaneRun:
    """How to drive one lane of a batched run (mirrors ``RunConfig``)."""

    max_ticks: int
    until: Callable[[], bool] | None = None
    start: bool = True
    drain: bool = False
    drain_slack: int = 1000


@dataclass
class LaneOutcome:
    """What one lane produced: its engine plus the run-loop verdict.

    ``error`` is ``None`` on clean termination, ``"budget"`` where a solo
    run would have raised :class:`~repro.errors.TickBudgetExceeded`, and
    ``"protocol"`` where it would have raised
    :class:`~repro.errors.ProtocolViolation` — captured per lane so one
    deadlocked lane cannot abort its siblings.
    """

    engine: FlatEngine
    ticks: int
    drained_ticks: int
    error: str | None


class BatchLaneMixin:
    """Lane registers and the lock-step scheduler, over any flat engine.

    Concrete batch engines (:class:`BatchEngine` and the dynamic variant
    in :mod:`repro.dynamics.engine`) mix this over their scalar base
    class: lane 0 **is** the engine itself, lanes 1..S-1 are sibling
    scalar engines over the same graph — and, through the process-wide
    compiled-topology/interner caches and the shared pre-shifted in-port
    table, over the same immutable protocol tables.
    """

    lanes: int = 1

    def _init_lanes(self, lanes: int) -> None:
        require_numpy()
        lanes = int(lanes)
        if lanes < 1:
            raise ReproError(f"lane count must be >= 1, got {lanes}")
        self.lanes = lanes
        #: lane index -> that lane's scalar engine (lane 0 is self)
        self.lane_engines: list[FlatEngine] = [self]
        for lane in range(1, lanes):
            self.lane_engines.append(self._make_lane_sibling(lane))
        #: (S,) scheduler registers of the last run_lanes call
        self._lane_state = _np.zeros(lanes, dtype=_np.int64)
        self._lane_clock = _np.zeros(lanes, dtype=_np.int64)
        self._lane_error = _np.zeros(lanes, dtype=_np.int64)
        #: (S, num_codes) per-lane emission counters, snapshotted at the
        #: end of each run_lanes call (and zeroed by reset)
        self._lane_emitted = _np.zeros((lanes, 0), dtype=_np.int64)
        #: (K, C) 0/1 gather matrix over the compiled kernel's predicate
        #: bitmasks — one column per TRAFFIC_CLASSES entry.  Viewed
        #: zero-copy out of the (possibly mmap-backed) ``char_flags``
        #: table, so a warm artifact load pays no rebuild here either.
        flags = _np.frombuffer(self._topo.char_flags, dtype=_np.int64)
        bits = _np.array(_CLASS_BITS, dtype=_np.int64)
        self._class_masks = ((flags[:, None] & bits) != 0).astype(_np.int64)
        #: (S, C) per-lane traffic-class totals, refreshed by the
        #: pre-classification pass each lock-step round
        self._lane_classes = _np.zeros(
            (lanes, len(TRAFFIC_CLASSES)), dtype=_np.int64
        )

    def _make_lane_sibling(self, lane: int) -> FlatEngine:
        """Construct the scalar engine behind lane ``lane`` (> 0)."""
        raise NotImplementedError

    def _sibling_processors(self) -> list[Processor]:
        """A fresh processor column for a sibling lane.

        Pool contract: every processor in the stack is no-arg
        constructible, so a sibling column is one instance of each lane-0
        processor's type.
        """
        return [type(proc)() for proc in self.processors]

    # ------------------------------------------------------------------
    # per-lane numpy views
    # ------------------------------------------------------------------
    def lane_emitted_matrix(self):
        """Per-lane per-code emission counters as an ``(S, codes)`` matrix.

        Row ``i`` is lane ``i``'s ``_emitted_by_code`` counters, zero-padded
        to the widest lane alphabet (lanes grow their code tables
        independently when a run interns characters lazily).
        """
        require_numpy()
        width = max(len(eng._emitted_by_code) for eng in self.lane_engines)
        matrix = _np.zeros((self.lanes, width), dtype=_np.int64)
        for i, eng in enumerate(self.lane_engines):
            row = eng._emitted_by_code
            if row:
                matrix[i, : len(row)] = row
        return matrix

    def _classify_lanes(self):
        """The vectorized pre-classification pass: one gather per round.

        Buckets every lane's per-code emission counters through the
        kernel's predicate bitmask columns in a single ``(S, K) @ (K, C)``
        product — no per-character Python, no ``Char`` objects.  Codes a
        run interned beyond the compiled census carry no kernel flags and
        classify as zero across the board.
        """
        emitted = self.lane_emitted_matrix()
        masks = self._class_masks
        k = min(emitted.shape[1], masks.shape[0])
        self._lane_classes = emitted[:, :k] @ masks[:k]
        return self._lane_classes

    def lane_traffic_classes(self):
        """Per-lane emission totals bucketed by character class.

        Returns an ``(S, len(TRAFFIC_CLASSES))`` int64 matrix: row ``i``
        is lane ``i``'s lifetime emission counts summed per predicate
        class, in :data:`TRAFFIC_CLASSES` column order.  A character
        carrying several flags (every snake token does) counts in each
        matching column, so columns overlap by design — read them as
        per-predicate totals, not a partition.  Refreshed from the live
        counters on every call.
        """
        require_numpy()
        return self._classify_lanes()

    # ------------------------------------------------------------------
    # vectorized transition-table views
    # ------------------------------------------------------------------
    def trans_tensor(self):
        """The automaton's transition program as a ``(K, delta+1, P)`` tensor.

        A zero-copy ``numpy`` view over the compiled topology's
        ``char_trans`` table (mmap-backed when served from the artifact
        library, so all lanes — and all processes — share one physical
        copy): axis 0 is the character code, axis 1 the arrival in-port,
        axis 2 the family-bank phase.  Row values follow the encoding in
        :mod:`repro.sim.characters` — 0 drops, negative escapes with the
        filled code fused in, positive rows carry op/phase/port/code
        fields.  This is the same program each lane's scalar table walk
        executes; the tensor form exists for cross-lane gathers.
        """
        require_numpy()
        topo = self._topo
        k = len(topo.char_flags)
        return _np.frombuffer(topo.char_trans, dtype=_np.int64).reshape(
            k, topo.delta + 1, n_phases(topo.delta)
        )

    def gather_rows(self, codes, in_ports, phases):
        """One vectorized gather of ``S`` transition rows.

        ``codes``, ``in_ports`` and ``phases`` are ``(S,)`` vectors (one
        entry per lane); the result is the ``(S,)`` int64 row vector
        ``trans[codes, in_ports, phases]`` — every lane's next transition
        resolved in a single numpy indexing operation, no per-lane Python.
        Negative entries mark lanes that must fall back to the scalar
        escape path; callers mask them out and finish those lanes
        scalar-style.
        """
        require_numpy()
        return self.trans_tensor()[
            _np.asarray(codes, dtype=_np.int64),
            _np.asarray(in_ports, dtype=_np.int64),
            _np.asarray(phases, dtype=_np.int64),
        ]

    def lane_phase_matrix(self):
        """Every lane's shadow phase registers as an ``(S, N*6)`` matrix.

        Row ``i`` is lane ``i``'s per-node, per-family-bank phase vector
        as of its last table-walked delivery (see
        :meth:`~repro.sim.flatcore.FlatEngine._tw_sync` for the register
        derivation).  Pairs with :meth:`gather_rows` to resolve one
        node's next transition across all lanes at once.
        """
        require_numpy()
        return _np.array(
            [eng._tw_phase for eng in self.lane_engines], dtype=_np.int64
        )

    def _reset_lane_registers(self) -> None:
        self._lane_state[:] = 0
        self._lane_clock[:] = 0
        self._lane_error[:] = 0
        self._lane_emitted = _np.zeros((self.lanes, 0), dtype=_np.int64)
        self._lane_classes = _np.zeros(
            (self.lanes, len(TRAFFIC_CLASSES)), dtype=_np.int64
        )

    # ------------------------------------------------------------------
    # the lock-step scheduler
    # ------------------------------------------------------------------
    def run_lanes(self, runs: Sequence[LaneRun]) -> list[LaneOutcome]:
        """Drive every lane to completion in lock-step bursts.

        Each lane follows exactly the scalar run loop
        (:meth:`repro.sim.engine.Engine.run`, plus ``run_to_idle`` when
        its :class:`LaneRun` drains): the same until-before-advance
        ordering, the same dead-network fast-forward, the same budget
        accounting — so a lane's transcript, tick count and metrics are
        byte-identical to a solo run.  Lanes only differ from solo runs
        in *when* they execute: a vectorized mask over the ``(S,)``
        registers picks the live lanes each round, and every live lane
        advances up to ``_BURST`` event steps before the next mask
        refresh.  Budget and protocol failures are captured per lane as
        :attr:`LaneOutcome.error` instead of raised.
        """
        if len(runs) != self.lanes:
            raise ReproError(
                f"run_lanes got {len(runs)} lane configs for {self.lanes} lanes"
            )
        engines = self.lane_engines
        state = self._lane_state
        error = self._lane_error
        state[:] = LANE_RUNNING
        error[:] = ERR_NONE
        # budget / terminal / drained tick registers for this call
        limit = _np.array([run.max_ticks for run in runs], dtype=_np.int64)
        term = _np.zeros(self.lanes, dtype=_np.int64)
        drained = _np.zeros(self.lanes, dtype=_np.int64)
        for i, (eng, run) in enumerate(zip(engines, runs)):
            if run.start:
                try:
                    eng.start()
                except ProtocolViolation:
                    error[i] = ERR_PROTOCOL
                    term[i] = drained[i] = eng.tick
                    state[i] = LANE_DONE
        while True:
            live = _np.flatnonzero(state != LANE_DONE)
            if live.size == 0:
                break
            # pre-classification: refresh the per-lane traffic-class
            # totals once per lock-step round (amortized over _BURST
            # event steps per lane), so campaign-level consumers can
            # watch class mix evolve without touching the hot loop
            self._classify_lanes()
            for idx in live.tolist():
                self._lane_burst(idx, engines[idx], runs[idx], state, limit,
                                 error, term, drained)
                self._lane_clock[idx] = engines[idx].tick
        self._lane_emitted = self.lane_emitted_matrix()
        self._classify_lanes()
        codes = (None, "budget", "protocol")
        return [
            LaneOutcome(
                engine=engines[i],
                ticks=int(term[i]),
                drained_ticks=int(drained[i]),
                error=codes[int(error[i])],
            )
            for i in range(self.lanes)
        ]

    def _lane_burst(self, i, eng, run, state, limit, error, term, drained) -> None:
        """Advance lane ``i`` by up to ``_BURST`` scalar run-loop steps.

        Hot path: the numpy registers are touched only at phase
        transitions, never per micro-step — a per-step ``state[i]`` read
        would cost more than the mask refresh the burst exists to
        amortize.  The phase lives in a local between transitions.
        """
        until = run.until
        max_ticks = run.max_ticks
        advance = eng._advance
        steps = _BURST
        mode = int(state[i])
        try:
            if mode == LANE_RUNNING:
                while steps > 0:
                    steps -= 1
                    if eng.tick < max_ticks:
                        if until is not None:
                            if until():
                                pass  # terminal; fall to the transition
                            elif eng._next_event_tick() is None:
                                # dead network under a just-false
                                # predicate: burn the budget in one jump
                                # (Engine.run does the same)
                                eng.tick = max_ticks
                                continue
                            else:
                                advance(max_ticks)
                                continue
                        elif eng.is_idle() and eng.tick > 0:
                            pass  # terminal
                        else:
                            advance(max_ticks)
                            continue
                    elif not (until is not None and until()):
                        # budget exhausted (an until holding exactly at
                        # the boundary still counts as termination)
                        error[i] = ERR_BUDGET
                        term[i] = drained[i] = eng.tick
                        state[i] = LANE_DONE
                        return
                    # terminal transition
                    term[i] = eng.tick
                    if not run.drain:
                        drained[i] = eng.tick
                        state[i] = LANE_DONE
                        return
                    state[i] = LANE_DRAINING
                    limit[i] = max_ticks + run.drain_slack
                    mode = LANE_DRAINING
                    break
                if mode != LANE_DRAINING:
                    return  # burst exhausted mid-run
            # LANE_DRAINING: the scalar run_to_idle loop
            lim = int(limit[i])
            while steps > 0:
                steps -= 1
                if eng.is_idle():
                    drained[i] = eng.tick
                    state[i] = LANE_DONE
                    return
                if eng.tick >= lim:
                    error[i] = ERR_BUDGET
                    drained[i] = eng.tick
                    state[i] = LANE_DONE
                    return
                advance(lim)
        except ProtocolViolation:
            error[i] = ERR_PROTOCOL
            if mode == LANE_RUNNING:
                term[i] = eng.tick
            drained[i] = eng.tick
            state[i] = LANE_DONE


class BatchEngine(BatchLaneMixin, FlatEngine):
    """The static ``batch`` backend: S flat lanes over one compiled graph.

    With ``lanes=1`` (the default — what every scalar front-end builds
    through the backend registry) this **is** a flat engine: stepping,
    transcripts and metrics are inherited unchanged, so single-scenario
    batch runs are byte-identical to ``flat`` by construction.  Lane
    fan-out happens through :meth:`~BatchLaneMixin.run_lanes`, which the
    batched campaign executor drives.
    """

    def __init__(
        self,
        graph: PortGraph,
        processors: list[Processor],
        root: int = 0,
        *,
        record_transcript: bool = True,
        lanes: int = 1,
    ) -> None:
        require_numpy()
        super().__init__(
            graph, processors, root=root, record_transcript=record_transcript
        )
        self._init_lanes(lanes)

    def _make_lane_sibling(self, lane: int) -> FlatEngine:
        return FlatEngine(
            self.graph,
            self._sibling_processors(),
            root=self.root,
            record_transcript=self.transcript.enabled,
        )

    def reset(self) -> None:
        """Power-on reset of every lane (lane 0 via the flat reset)."""
        super().reset()
        for eng in self.lane_engines[1:]:
            eng.reset()
        self._reset_lane_registers()
