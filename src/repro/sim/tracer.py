"""Structured event tracing: watch every character move through the network.

The transcript (:mod:`repro.sim.transcript`) records only what the *root*
sees — that restriction is the whole point of the problem.  The tracer, by
contrast, is an omniscient debugging/teaching instrument: it records every
delivery in the network so tests can assert on wavefront shapes and the
space-time renderer (:mod:`repro.viz.spacetime`) can draw how snakes crawl
and KILL tokens hunt them down.

Attach with ``engine.tracer = EventTrace(...)`` before running.  Tracing is
off by default and costs nothing when disabled.
"""

from __future__ import annotations

from typing import Callable, Iterator, NamedTuple

from repro.sim.characters import Char

__all__ = ["TraceEvent", "EventTrace"]


class TraceEvent(NamedTuple):
    """One observed character movement."""

    tick: int
    kind: str      # "deliver" | "emit"
    node: int      # receiving node (deliver) or sending node (emit)
    port: int      # in-port (deliver) or out-port (emit)
    char: Char


class EventTrace:
    """Collects :class:`TraceEvent` records, with optional filtering.

    Args:
        keep: predicate over :class:`Char`; only matching characters are
            recorded (default: everything).  Use e.g.
            ``lambda c: c.kind.startswith("IG")`` to watch one snake family.
        max_events: hard cap to keep runaway traces from eating memory.
    """

    def __init__(
        self,
        *,
        keep: Callable[[Char], bool] | None = None,
        max_events: int = 1_000_000,
    ) -> None:
        self._keep = keep
        self._max = max_events
        self._events: list[TraceEvent] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    def record_delivery(self, tick: int, node: int, in_port: int, char: Char) -> None:
        """Engine hook: ``char`` was handed to ``node`` this tick."""
        self._record(TraceEvent(tick, "deliver", node, in_port, char))

    def record_emission(self, tick: int, node: int, out_port: int, char: Char) -> None:
        """Engine hook: ``node`` put ``char`` on a wire this tick."""
        self._record(TraceEvent(tick, "emit", node, out_port, char))

    def _record(self, event: TraceEvent) -> None:
        if self._keep is not None and not self._keep(event.char):
            return
        if len(self._events) >= self._max:
            self.dropped += 1
            return
        self._events.append(event)

    # ------------------------------------------------------------------
    def events(self, kind: str | None = None) -> Iterator[TraceEvent]:
        """Iterate events, optionally only ``"deliver"`` or ``"emit"``."""
        return (e for e in self._events if kind is None or e.kind == kind)

    def deliveries(self) -> list[TraceEvent]:
        """All delivery events, in time order."""
        return list(self.events("deliver"))

    def __len__(self) -> int:
        return len(self._events)

    def first_delivery(self, node: int, char_kind: str) -> TraceEvent | None:
        """The first time ``node`` received a character of ``char_kind``."""
        for e in self._events:
            if e.kind == "deliver" and e.node == node and e.char.kind == char_kind:
                return e
        return None

    def wavefront(self, char_kind_prefix: str) -> dict[int, int]:
        """Node -> earliest delivery tick of any matching character.

        With prefix ``"IG"`` this is the in-growing flood's arrival
        schedule — tests use it to check the breadth-first property
        (arrival tick proportional to hop distance from the flood origin).
        """
        first: dict[int, int] = {}
        for e in self._events:
            if e.kind == "deliver" and e.char.kind.startswith(char_kind_prefix):
                first.setdefault(e.node, e.tick)
        return first
