"""Traffic accounting: characters delivered and emitted, by kind.

The E9 benchmark profiles which character families dominate the protocol's
traffic; tests use the counters to confirm e.g. that a single RCA moves
``O(N * D)`` characters.
"""

from __future__ import annotations

from collections import Counter

from repro.sim.characters import Char, is_snake, snake_family

__all__ = ["TrafficMetrics"]


class TrafficMetrics:
    """Counts of wire deliveries and processor emissions per character kind."""

    def __init__(self) -> None:
        self.delivered: Counter[str] = Counter()
        self.emitted: Counter[str] = Counter()

    def count_delivery(self, char: Char) -> None:
        """Account one character handed to a processor."""
        self.delivered[char.kind] += 1

    def count_emission(self, char: Char) -> None:
        """Account one character put on a wire."""
        self.emitted[char.kind] += 1

    # ------------------------------------------------------------------
    @property
    def total_delivered(self) -> int:
        """Total character-hops completed."""
        return sum(self.delivered.values())

    def by_family(self) -> dict[str, int]:
        """Deliveries aggregated by snake family / token kind."""
        out: dict[str, int] = {}
        for kind, count in self.delivered.items():
            key = snake_family(Char(kind)) if len(kind) == 3 and is_snake(Char(kind)) else kind
            out[key] = out.get(key, 0) + count
        return out

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy of the delivery counters (for diffing)."""
        return dict(self.delivered)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrafficMetrics(total={self.total_delivered})"
