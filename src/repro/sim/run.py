"""Layer 2 — shared run orchestration over the scheduler core.

Every front-end of the simulation stack — the full-protocol runner
(:mod:`repro.protocol.runner`), the dynamic-network experiment
(:mod:`repro.dynamics.experiment`), and the scripted single-RCA/BCA
drivers — used to hand-roll the same loop: start the engine, run under a
tick budget until a termination predicate holds, optionally drain the
straggling cleanup, and package ticks/transcript/metrics.  That plumbing
lives here once, as a :class:`RunConfig`/:class:`RunResult` pair around
:func:`execute_run`.

The pair is deliberately engine-agnostic: anything exposing the
:class:`~repro.sim.engine.Engine` run surface (``start``/``step_tick``/
``run``/``run_to_idle``/``tick``/``transcript``/``metrics``) can be
orchestrated, which is how the dynamic engine reuses it unchanged.

This module also owns the **backend registry**: the paper's semantics have
two interchangeable engine implementations — the original object backend
(:class:`~repro.sim.engine.Engine`) and the compiled flat-core backend
(:class:`~repro.sim.flatcore.FlatEngine`), which lowers topology and
alphabet into dense integer tables.  Every front-end resolves its engine
through :func:`make_engine`, so ``backend="object" | "flat"`` threads from
the CLI and the campaign matrix all the way down without any front-end
knowing a concrete engine class.  The two backends are tick-exact
equivalent (transcripts, tick counts and traffic metrics are identical;
the differential parity suite enforces it) — ``flat`` is simply faster on
large runs, ``object`` is the reference implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError, TickBudgetExceeded
from repro.sim.batchcore import BatchEngine, BatchLaneMixin, have_numpy
from repro.sim.engine import Engine
from repro.sim.flatcore import FlatEngine
from repro.sim.metrics import TrafficMetrics
from repro.sim.processor import Processor
from repro.sim.transcript import Transcript
from repro.topology.portgraph import PortGraph

__all__ = [
    "DEFAULT_BACKEND",
    "ENGINE_BACKENDS",
    "make_engine",
    "backend_of",
    "check_backend",
    "EnginePool",
    "RunConfig",
    "RunResult",
    "execute_run",
]

#: The reference backend; campaigns and stores treat it as the implied
#: default (its spec hashes predate the backend axis and must not move).
DEFAULT_BACKEND = "object"

#: name -> engine class implementing the :class:`Engine` run surface.
#: ``batch`` is always registered (so it shows up in CLI choices and spec
#: validation) but requires the optional numpy extra to actually run —
#: :func:`check_backend` reports the missing dependency.
ENGINE_BACKENDS: dict[str, type[Engine]] = {
    "object": Engine,
    "flat": FlatEngine,
    "batch": BatchEngine,
}


def check_backend(backend: str) -> str:
    """Validate a backend name against the registry; returns it unchanged."""
    if backend not in ENGINE_BACKENDS:
        raise ReproError(
            f"unknown engine backend {backend!r}; known: {sorted(ENGINE_BACKENDS)}"
        )
    if backend == "batch" and not have_numpy():
        raise ReproError(
            "engine backend 'batch' requires numpy, which is not installed; "
            "install the optional extra: pip install 'repro-topology[batch]'"
        )
    return backend


def make_engine(
    backend: str,
    graph: PortGraph,
    processors: list[Processor],
    *,
    root: int = 0,
    record_transcript: bool = True,
) -> Engine:
    """Build the engine for ``backend`` (``"object"`` or ``"flat"``)."""
    cls = ENGINE_BACKENDS[check_backend(backend)]
    return cls(graph, processors, root=root, record_transcript=record_transcript)


class EnginePool:
    """Reset-and-reuse engines instead of rebuilding their data planes.

    Constructing an engine re-derives everything downstream of (graph,
    processor types): wiring lookups, dispatch tables and — on the flat
    backend — the code-indexed handler/fill tables, packed-wheel
    dictionaries and send-time sink closures.  All of that is a pure
    function of the construction signature, so a finished engine can serve
    the next run after an in-place :meth:`~repro.sim.engine.Engine.reset`
    (byte-identical to a fresh engine; the reuse parity suite enforces it).

    ``checkout`` hands back an idle engine for the exact signature —
    ``(engine class, graph wiring, processor class, root, transcript
    flag)`` — already reset, or constructs one on first sight.  ``checkin``
    returns it after the run.  Results captured from a run (transcript,
    metrics) stay valid after check-in: a reset *rebinds* those objects,
    never clears them.  The engine object embedded in some result types is
    only coherent until its next checkout — campaign and benchmark callers,
    the intended users, read everything they need before returning.

    The pool composes with the caches *below* it: an engine constructed on
    a pool miss resolves its tables through ``compiled_topology()``, which
    reads the process-wide in-memory cache and — when an artifact library
    is configured (:mod:`repro.store.artifacts`) — the on-disk mmap tier,
    so even a brand-new pool in a brand-new process skips the compiler for
    every wiring it has ever seen.

    The pool is not thread-safe; it is per-process state (each campaign
    worker owns one).
    """

    #: idle engines kept per signature; beyond this, checked-in engines
    #: are simply dropped (a signature rarely needs more than one engine
    #: at a time — the cap guards pathological checkout patterns).
    MAX_IDLE_PER_KEY = 4

    #: total idle engines kept across all signatures, evicted LRU.  Some
    #: callers pool engines under keys that never recur (a campaign's
    #: shutdown cells each run on their own degraded graph); without a
    #: global bound a long-lived worker would retain one dead engine per
    #: such cell forever.
    MAX_IDLE_TOTAL = 32

    def __init__(self) -> None:
        # key -> idle engines; ordered dict with most-recently-used keys
        # last, so global eviction drops the coldest signature first
        self._idle: "OrderedDict[tuple, list[Engine]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def checkout(
        self,
        engine_cls: type[Engine],
        graph: PortGraph,
        processor_cls: type[Processor],
        *,
        root: int = 0,
        record_transcript: bool = True,
        timeline=None,
        lanes: int = 1,
    ) -> Engine:
        """An engine ready to run: reused and reset, or freshly built.

        ``timeline`` (a compiled program or a plain wire-op sequence)
        selects the dynamic construction/reset signature — dynamic engine
        classes take it positionally and accept it in ``reset``.
        ``processor_cls`` must be no-arg constructible (every processor in
        the stack is); the pool builds one instance per node.

        ``lanes`` is part of the reuse signature: a batched engine built
        for S lanes carries S processor columns and S lane data planes,
        so it can only stand in for another S-lane checkout.  Lane counts
        above 1 are passed through to the engine constructor (batch
        classes only).
        """
        key = (engine_cls, processor_cls, root, record_transcript, graph, lanes)
        stack = self._idle.get(key)
        if stack:
            self.hits += 1
            self._idle.move_to_end(key)
            engine = stack.pop()
            if not stack:
                del self._idle[key]
            if timeline is None:
                engine.reset()
            else:
                engine.reset(timeline)
            return engine
        self.misses += 1
        processors = [processor_cls() for _ in range(graph.num_nodes)]
        extra = {} if lanes == 1 else {"lanes": lanes}
        if timeline is None:
            engine = engine_cls(
                graph,
                processors,
                root=root,
                record_transcript=record_transcript,
                **extra,
            )
        else:
            engine = engine_cls(
                graph,
                processors,
                timeline,
                root=root,
                record_transcript=record_transcript,
                **extra,
            )
        engine._pool_key = key
        return engine

    def checkin(self, engine: Engine) -> None:
        """Return a finished engine for later reuse (idempotent-safe)."""
        key = getattr(engine, "_pool_key", None)
        if key is None:
            return
        stack = self._idle.setdefault(key, [])
        self._idle.move_to_end(key)
        if engine not in stack and len(stack) < self.MAX_IDLE_PER_KEY:
            stack.append(engine)
            total = sum(len(s) for s in self._idle.values())
            while total > self.MAX_IDLE_TOTAL:
                coldest_key, coldest = next(iter(self._idle.items()))
                coldest.pop(0)
                total -= 1
                if not coldest:
                    del self._idle[coldest_key]

    def clear(self) -> None:
        """Drop every idle engine (tests, cold-cache baselines)."""
        self._idle.clear()
        self.hits = 0
        self.misses = 0


def backend_of(engine: Engine) -> str:
    """The backend name an engine instance implements.

    An exact match against the registry wins (so a registered engine
    class — including bench/test variants added to
    :data:`ENGINE_BACKENDS` — reports its own name); otherwise subclasses
    (the dynamic engines) classify by their data plane: anything carrying
    batch lanes is ``"batch"``, anything else built on
    :class:`FlatEngine` is ``"flat"``, every other :class:`Engine` is
    ``"object"``.
    """
    for name, cls in ENGINE_BACKENDS.items():
        if type(engine) is cls:
            return name
    if isinstance(engine, BatchLaneMixin):
        return "batch"
    return "flat" if isinstance(engine, FlatEngine) else "object"


@dataclass(frozen=True)
class RunConfig:
    """How to drive one engine run.

    Attributes:
        max_ticks: the liveness watchdog — :class:`TickBudgetExceeded` is
            raised if the condition has not held by then.
        until: termination predicate, evaluated at event boundaries.
            ``None`` means "run until the network goes idle".
        start: whether :func:`execute_run` delivers the outside source's
            nudge (``engine.start()``); front-ends that trigger processors
            by hand (the scripted drivers) pass ``False`` and start first.
        drain: whether to keep simulating after termination until no
            character remains anywhere (the protocol's straggling cleanup).
        drain_slack: extra ticks granted to the drain on top of
            ``max_ticks``.
        after_tick: optional per-event-tick hook (called with the engine
            after each step).  Setting it forces the orchestrator onto the
            exact single-step path — the cleanup-invariant runner uses it
            to sweep the network after every completed RCA/BCA.
        backend: which engine backend the run executes on (``"object"``,
            ``"flat"`` or ``"batch"``).  Front-ends resolve it through
            :func:`make_engine` before calling :func:`execute_run`, which
            then *checks* the engine it was handed actually is of the
            declared backend — a config that says ``flat`` cannot silently
            run on an object engine.
        lanes: how many lock-step lanes the run spans.  Only the
            ``batch`` backend is lane-parallel; every scalar run keeps the
            default of 1.  Lanes above 1 are driven through
            :meth:`~repro.sim.batchcore.BatchLaneMixin.run_lanes` rather
            than :func:`execute_run` (which orchestrates one lane).
    """

    max_ticks: int
    until: Callable[[], bool] | None = None
    start: bool = True
    drain: bool = True
    drain_slack: int = 1000
    after_tick: Callable[[Engine], None] | None = field(default=None, compare=False)
    backend: str = DEFAULT_BACKEND
    lanes: int = 1

    def __post_init__(self) -> None:
        check_backend(self.backend)
        if self.lanes < 1:
            raise ReproError(f"lane count must be >= 1, got {self.lanes}")
        if self.lanes > 1 and self.backend != "batch":
            raise ReproError(
                f"backend {self.backend!r} is not lane-parallel; "
                "lanes > 1 requires backend='batch'"
            )


@dataclass
class RunResult:
    """What one orchestrated engine run produced.

    Attributes:
        engine: the engine, in its post-run state.
        ticks: the tick at which the run condition first held — the
            paper's time-complexity measure.
        drained_ticks: the tick at which the network was completely idle
            (equal to ``ticks`` when the config did not drain).
    """

    engine: Engine
    ticks: int
    drained_ticks: int

    @property
    def transcript(self) -> Transcript:
        """The root's transcript, as recorded by the engine."""
        return self.engine.transcript

    @property
    def metrics(self) -> TrafficMetrics:
        """Character-traffic counters, as accumulated by the engine."""
        return self.engine.metrics


def execute_run(engine: Engine, config: RunConfig) -> RunResult:
    """Drive ``engine`` per ``config`` and package the outcome.

    Raises :class:`TickBudgetExceeded` if the watchdog fires, after which
    the engine is left at the tick it reached (callers that classify
    deadlocks read ``engine.tick`` from the exception site).
    """
    actual = backend_of(engine)
    if actual != config.backend:
        raise ReproError(
            f"run config declares backend {config.backend!r} but the engine "
            f"is {type(engine).__name__} ({actual!r}); build it through "
            f"make_engine(config.backend, ...)"
        )
    if config.start:
        engine.start()
    if config.after_tick is not None:
        ticks = _run_with_hook(engine, config)
    else:
        ticks = engine.run(
            max_ticks=config.max_ticks, until=config.until, start=False
        )
    drained = ticks
    if config.drain:
        drained = engine.run_to_idle(max_ticks=config.max_ticks + config.drain_slack)
    return RunResult(engine=engine, ticks=ticks, drained_ticks=drained)


def _run_with_hook(engine: Engine, config: RunConfig) -> int:
    """Single-step run path for configs with an ``after_tick`` hook."""
    until = config.until
    while True:
        if until is not None and until():
            return engine.tick
        if until is None and engine.is_idle() and engine.tick > 0:
            return engine.tick
        if engine.tick >= config.max_ticks:
            raise TickBudgetExceeded(config.max_ticks)
        engine.step_tick()
        config.after_tick(engine)
