"""Layer 2 — shared run orchestration over the scheduler core.

Every front-end of the simulation stack — the full-protocol runner
(:mod:`repro.protocol.runner`), the dynamic-network experiment
(:mod:`repro.dynamics.experiment`), and the scripted single-RCA/BCA
drivers — used to hand-roll the same loop: start the engine, run under a
tick budget until a termination predicate holds, optionally drain the
straggling cleanup, and package ticks/transcript/metrics.  That plumbing
lives here once, as a :class:`RunConfig`/:class:`RunResult` pair around
:func:`execute_run`.

The pair is deliberately engine-agnostic: anything exposing the
:class:`~repro.sim.engine.Engine` run surface (``start``/``step_tick``/
``run``/``run_to_idle``/``tick``/``transcript``/``metrics``) can be
orchestrated, which is how the dynamic engine reuses it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TickBudgetExceeded
from repro.sim.engine import Engine
from repro.sim.metrics import TrafficMetrics
from repro.sim.transcript import Transcript

__all__ = ["RunConfig", "RunResult", "execute_run"]


@dataclass(frozen=True)
class RunConfig:
    """How to drive one engine run.

    Attributes:
        max_ticks: the liveness watchdog — :class:`TickBudgetExceeded` is
            raised if the condition has not held by then.
        until: termination predicate, evaluated at event boundaries.
            ``None`` means "run until the network goes idle".
        start: whether :func:`execute_run` delivers the outside source's
            nudge (``engine.start()``); front-ends that trigger processors
            by hand (the scripted drivers) pass ``False`` and start first.
        drain: whether to keep simulating after termination until no
            character remains anywhere (the protocol's straggling cleanup).
        drain_slack: extra ticks granted to the drain on top of
            ``max_ticks``.
        after_tick: optional per-event-tick hook (called with the engine
            after each step).  Setting it forces the orchestrator onto the
            exact single-step path — the cleanup-invariant runner uses it
            to sweep the network after every completed RCA/BCA.
    """

    max_ticks: int
    until: Callable[[], bool] | None = None
    start: bool = True
    drain: bool = True
    drain_slack: int = 1000
    after_tick: Callable[[Engine], None] | None = field(default=None, compare=False)


@dataclass
class RunResult:
    """What one orchestrated engine run produced.

    Attributes:
        engine: the engine, in its post-run state.
        ticks: the tick at which the run condition first held — the
            paper's time-complexity measure.
        drained_ticks: the tick at which the network was completely idle
            (equal to ``ticks`` when the config did not drain).
    """

    engine: Engine
    ticks: int
    drained_ticks: int

    @property
    def transcript(self) -> Transcript:
        """The root's transcript, as recorded by the engine."""
        return self.engine.transcript

    @property
    def metrics(self) -> TrafficMetrics:
        """Character-traffic counters, as accumulated by the engine."""
        return self.engine.metrics


def execute_run(engine: Engine, config: RunConfig) -> RunResult:
    """Drive ``engine`` per ``config`` and package the outcome.

    Raises :class:`TickBudgetExceeded` if the watchdog fires, after which
    the engine is left at the tick it reached (callers that classify
    deadlocks read ``engine.tick`` from the exception site).
    """
    if config.start:
        engine.start()
    if config.after_tick is not None:
        ticks = _run_with_hook(engine, config)
    else:
        ticks = engine.run(
            max_ticks=config.max_ticks, until=config.until, start=False
        )
    drained = ticks
    if config.drain:
        drained = engine.run_to_idle(max_ticks=config.max_ticks + config.drain_slack)
    return RunResult(engine=engine, ticks=ticks, drained_ticks=drained)


def _run_with_hook(engine: Engine, config: RunConfig) -> int:
    """Single-step run path for configs with an ``after_tick`` hook."""
    until = config.until
    while True:
        if until is not None and until():
            return engine.tick
        if until is None and engine.is_idle() and engine.tick > 0:
            return engine.tick
        if engine.tick >= config.max_ticks:
            raise TickBudgetExceeded(config.max_ticks)
        engine.step_tick()
        config.after_tick(engine)
