"""Finite-state audit: verify processor state is O(1) in the network size.

The paper's processors are finite-state automata: their memory must be a
constant depending only on the degree bound ``delta`` — never on ``N`` or
``D``.  Our processors are Python objects (deviation D5), so instead of a
by-construction guarantee we *measure*: :func:`state_atom_count` counts the
atoms in a processor's :meth:`state_snapshot`, and
:func:`assert_finite_state` checks it against a bound that is a function of
``delta`` alone.  Property tests run the audit at every protocol phase on
networks of very different sizes; the count must not grow with ``N``.
"""

from __future__ import annotations

from typing import Any

from repro.sim.processor import Processor

__all__ = ["state_atom_count", "state_bound", "assert_finite_state"]


def _count_atoms(value: Any) -> int:
    """Number of scalar atoms in a nested snapshot structure."""
    if isinstance(value, dict):
        return sum(_count_atoms(v) for v in value.values())
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(_count_atoms(v) for v in value) + 1
    if isinstance(value, str):
        # A register holding a phase name is one atom; arbitrarily long
        # strings would be cheating, so long strings count per character.
        return 1 if len(value) <= 16 else len(value)
    return 1


def state_atom_count(proc: Processor) -> int:
    """Atoms in the processor's registers plus its resting characters."""
    snapshot = proc.state_snapshot()
    atoms = _count_atoms(snapshot)
    # Resting characters are part of the processor's memory too.  Each
    # constant-size character counts as one atom.
    atoms += sum(1 for _ in proc.outbox_chars())
    return atoms


def state_bound(delta: int) -> int:
    """An admissible register budget for degree bound ``delta``.

    Generous but N-independent: the GTD automaton keeps per-port marks
    (O(delta)), a constant number of phase registers and port registers
    (O(delta**2) for the FORWARD token context), and at most a constant
    number of resting characters per family per port.
    """
    return 40 * delta * delta + 80 * delta + 120


def assert_finite_state(proc: Processor, delta: int) -> int:
    """Raise ``AssertionError`` if the processor outgrew its budget.

    Returns the measured atom count so tests can also compare counts across
    network sizes directly.
    """
    atoms = state_atom_count(proc)
    bound = state_bound(delta)
    if atoms > bound:
        raise AssertionError(
            f"processor state has {atoms} atoms, exceeding the finite-state "
            f"budget {bound} for delta={delta}"
        )
    return atoms
