"""The root's computational transcript.

The paper's root "is piping its computational transcript to the computer to
which it is attached" (§1.2.1); by protocol end the master computer must be
able to reconstruct the topology *from this stream alone*.  We record three
event kinds:

* ``recv`` — a character arrived at a root in-port;
* ``send`` — a character left a root out-port;
* ``pipe`` — a constant-size root status record (deviation D2: the root
  reports its own DFS progress directly instead of running a degenerate
  RCA with itself, plus the terminal announcement the paper's root makes
  when "informing its master computer that the algorithm has completed").

The honesty property — reconstruction uses only this object — is enforced
structurally: :class:`~repro.protocol.root_computer.MasterComputer` takes a
:class:`Transcript` and nothing else.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.sim.characters import Char

__all__ = ["TranscriptEvent", "Transcript"]


class TranscriptEvent(NamedTuple):
    """One transcript record.

    ``port`` and ``char`` are set for ``recv``/``send`` events; ``label``
    and ``data`` for ``pipe`` events.
    """

    tick: int
    kind: str  # "recv" | "send" | "pipe"
    port: int | None
    char: Char | None
    label: str | None
    data: tuple


class Transcript:
    """Append-only event log of the root's I/O."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._events: list[TranscriptEvent] = []

    def record_recv(self, tick: int, in_port: int, char: Char) -> None:
        """Record a character arriving at the root."""
        if self.enabled:
            self._events.append(
                TranscriptEvent(tick, "recv", in_port, char, None, ())
            )

    def record_send(self, tick: int, out_port: int, char: Char) -> None:
        """Record a character leaving the root."""
        if self.enabled:
            self._events.append(
                TranscriptEvent(tick, "send", out_port, char, None, ())
            )

    def record_pipe(self, tick: int, label: str, data: tuple) -> None:
        """Record a root status pipe (always recorded; constant-size)."""
        self._events.append(TranscriptEvent(tick, "pipe", None, None, label, data))

    # ------------------------------------------------------------------
    def events(self) -> Iterator[TranscriptEvent]:
        """Iterate over events in arrival order."""
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TranscriptEvent]:
        return self.events()

    def pipes(self, label: str | None = None) -> list[TranscriptEvent]:
        """All pipe events, optionally filtered by label."""
        return [
            e
            for e in self._events
            if e.kind == "pipe" and (label is None or e.label == label)
        ]

    def received(self, kind: str | None = None) -> list[TranscriptEvent]:
        """All recv events, optionally filtered by character kind."""
        return [
            e
            for e in self._events
            if e.kind == "recv" and (kind is None or (e.char and e.char.kind == kind))
        ]
