"""The constant character alphabet flowing through the network.

Everything a wire ever carries is a :class:`Char`.  The taxonomy follows the
paper §2 exactly, plus the BCA-internal characters of deviation D1:

Snake characters (all speed-1), three roles per family:
    ``IG`` in-growing   — RCA step 1, processor A searches for the root
    ``OG`` out-growing  — RCA step 2, root re-broadcast reaching back to A
    ``ID`` in-dying     — RCA step 3, marks the path A -> root
    ``OD`` out-dying    — RCA step 3, marks the path root -> A
    ``BG`` BCA-growing  — BCA search for the upstream neighbour
    ``BD`` BCA-dying    — BCA loop marking + message delivery

Head and body characters carry ``(out_port, in_port)``; a freshly created
character has ``in_port = STAR`` and the first receiving processor fills in
the in-port it arrived through (paper §2.3.2).  Tails carry an optional
constant-size ``payload`` (the BCA message rides on the BD tail).

Tokens:
    ``DFS``     speed-1, snake-character structure: two port entries
    ``FWD``     speed-1 loop token FORWARD(o, i) — delta^2 variants
    ``BACK``    speed-1 loop token
    ``BDONE``   speed-1 BCA loop token (delivery-complete round)
    ``KILL``    speed-3, payload = scope ("RCA" or "BCA")
    ``UNMARK``  speed-3, payload = scope ("RCA" or "BCA")

:func:`alphabet_size` computes the exact size of this input/output set
``I`` as a function of ``delta`` — the quantity the paper's Lemma 5.2
transcript-counting argument needs.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

__all__ = [
    "STAR",
    "SNAKE_FAMILIES",
    "GROWING_FAMILIES",
    "DYING_FAMILIES",
    "Char",
    "speed_of",
    "residence",
    "is_snake",
    "is_growing",
    "is_dying",
    "snake_family",
    "snake_role",
    "growing_family_of",
    "dying_family_of",
    "make_head",
    "make_body",
    "make_tail",
    "fill_in_port",
    "convert",
    "alphabet_size",
    "enumerate_alphabet",
    "intern_char",
    "CharInterner",
    "interner_for",
    "clear_interner_cache",
    "CharKernel",
    "kernel_alphabet",
    "kernel_size",
    "kernel_for",
    "clear_kernel_cache",
    "n_phases",
    "growing_esc_phase",
    "dying_phase",
    "TRANS_OP_MASK",
    "TRANS_OP_BCAST",
    "TRANS_OP_MARK",
    "TRANS_OP_TAIL",
    "TRANS_OP_SEND",
    "TRANS_PHASE_SHIFT",
    "TRANS_PHASE_MASK",
    "TRANS_PORT_SHIFT",
    "TRANS_PORT_MASK",
    "TRANS_CODE_SHIFT",
    "KFLAG_SNAKE",
    "KFLAG_GROWING",
    "KFLAG_DYING",
    "KFLAG_HEAD",
    "KFLAG_BODY",
    "KFLAG_TAIL",
    "KFLAG_SCOPE_RCA",
    "KFLAG_SCOPE_BCA",
    "KFLAG_SPEED3",
    "KFLAG_FILLS",
    "KPRIO_SHIFT",
    "KPRIO_MASK",
    "TOKEN_KINDS",
    "MSG_DFS_RETURN",
    "SCOPE_RCA",
    "SCOPE_BCA",
]

#: Sentinel for an in-port that the next receiver has not yet filled in.
#: Real ports are 1-based, so 0 is safely out of band.
STAR = 0

SNAKE_FAMILIES = ("IG", "OG", "ID", "OD", "BG", "BD")
GROWING_FAMILIES = ("IG", "OG", "BG")
DYING_FAMILIES = ("ID", "OD", "BD")

_ROLE_HEAD = "H"
_ROLE_BODY = "B"
_ROLE_TAIL = "T"

TOKEN_KINDS = ("DFS", "FWD", "BACK", "BDONE", "KILL", "UNMARK")

#: The constant-size messages that may ride on a BD tail (deviation D1).
MSG_DFS_RETURN = "DFS_RET"

SCOPE_RCA = "RCA"
SCOPE_BCA = "BCA"

#: speed-3 characters rest 1 tick per processor; everything else is speed-1
#: and rests 3 (paper §2.1).
SPEED3_KINDS = frozenset({"KILL", "UNMARK"})
_SPEED3_KINDS = SPEED3_KINDS  # historical alias

#: Every growing-snake kind — the only characters a KILL can erase from a
#: processor mid-residence (the :attr:`~repro.sim.processor.Processor.\
#: PURGES_ONLY_GROWING` contract the flat-core backend's send-time
#: scheduling relies on).
GROWING_KINDS = frozenset(
    family + role for family in GROWING_FAMILIES for role in "HBT"
)


@dataclass(frozen=True, slots=True)
class Char:
    """One constant-size character.

    ``kind`` is either a token kind (``DFS``, ``FWD``, ...) or a snake kind:
    family + role, e.g. ``IGH`` (in-growing head), ``ODT`` (out-dying tail).
    ``out_port``/``in_port`` are the two port entries of snake-structured
    characters (0 when unused, ``STAR`` when awaiting fill-in).
    """

    kind: str
    out_port: int = 0
    in_port: int = 0
    payload: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        fields = []
        if self.out_port or self.in_port:
            star = "*" if self.in_port == STAR else str(self.in_port)
            fields.append(f"{self.out_port},{star}")
        if self.payload is not None:
            fields.append(self.payload)
        inner = "(" + "; ".join(fields) + ")" if fields else ""
        return f"{self.kind}{inner}"


# ----------------------------------------------------------------------
# predicates and accessors
# ----------------------------------------------------------------------
def is_snake(char: Char) -> bool:
    """Whether ``char`` belongs to one of the six snake families."""
    return len(char.kind) == 3 and char.kind[:2] in SNAKE_FAMILIES


def snake_family(char: Char) -> str:
    """The two-letter family of a snake character (``IG``/``OG``/...)."""
    return char.kind[:2]


def snake_role(char: Char) -> str:
    """``"H"``, ``"B"`` or ``"T"`` for a snake character."""
    return char.kind[2]


def is_growing(char: Char) -> bool:
    """Whether ``char`` is a growing-snake character (IG/OG/BG)."""
    return len(char.kind) == 3 and char.kind[:2] in GROWING_FAMILIES


def is_dying(char: Char) -> bool:
    """Whether ``char`` is a dying-snake character (ID/OD/BD)."""
    return len(char.kind) == 3 and char.kind[:2] in DYING_FAMILIES


def growing_family_of(scope: str) -> tuple[str, ...]:
    """The growing families a KILL of ``scope`` erases.

    RCA KILL erases both IG and OG characters and markings (step 4);
    a BCA KILL erases only BG.
    """
    return ("IG", "OG") if scope == SCOPE_RCA else ("BG",)


def dying_family_of(growing: str) -> str:
    """The dying family a terminator converts the growing family into.

    IG becomes OG at the root (growing->growing conversion is special-cased
    in the protocol); OG becomes ID at processor A; ID becomes OD at the
    root; BG becomes BD at the BCA initiator.  This mapping covers the two
    growing->dying conversions the machinery needs.
    """
    return {"OG": "ID", "BG": "BD"}[growing]


def speed_of(char: Char) -> int:
    """The paper-speed of a character: 3 for KILL/UNMARK, else 1."""
    return 3 if char.kind in _SPEED3_KINDS else 1


def residence(char: Char) -> int:
    """Ticks a character rests in a processor before moving on (§2.1).

    Speed-1 constructs rest 3 ticks; speed-3 constructs rest 1 tick, so a
    speed-3 token covers 3 hops in the time a snake covers 1.
    """
    return 1 if char.kind in _SPEED3_KINDS else 3


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
#: Process-wide canonical instances, keyed by field tuple.  The alphabet
#: is constant, so the cache is bounded; handing out one shared instance
#: per value lets identity-keyed fast paths (the flat-core backend's
#: encode) skip hashing the character entirely.
_INTERNED: dict[tuple, Char] = {}


def intern_char(
    kind: str, out_port: int = 0, in_port: int = 0, payload: str | None = None
) -> Char:
    """The process-wide canonical :class:`Char` with these fields."""
    key = (kind, out_port, in_port, payload)
    char = _INTERNED.get(key)
    if char is None:
        char = _INTERNED[key] = Char(kind, out_port, in_port, payload)
    return char


def make_head(family: str, out_port: int, in_port: int = STAR) -> Char:
    """A head character ``<family>H(out_port, in_port)``."""
    _check_family(family)
    return intern_char(family + _ROLE_HEAD, out_port, in_port)


def make_body(family: str, out_port: int, in_port: int = STAR) -> Char:
    """A body character ``<family>B(out_port, in_port)``."""
    _check_family(family)
    return intern_char(family + _ROLE_BODY, out_port, in_port)


def make_tail(family: str, payload: str | None = None) -> Char:
    """A tail character ``<family>T`` with optional constant-size payload."""
    _check_family(family)
    return intern_char(family + _ROLE_TAIL, payload=payload)


def fill_in_port(char: Char, in_port: int) -> Char:
    """Replace a STAR second entry with the actual arrival in-port.

    Mirrors §2.3.2: "when a processor receives any growing snake character
    with * as its second parameter, the processor notes the in-port j
    through which the character arrived and changes the * to j".  Characters
    whose in-port is already concrete are returned unchanged.
    """
    if char.in_port == STAR and (is_snake(char) or char.kind == "DFS"):
        return intern_char(char.kind, char.out_port, in_port, char.payload)
    return char


def convert(char: Char, family: str) -> Char:
    """Re-brand a snake character into another family, same role and fields.

    Used by the root (IG->OG, ID->OD), by processor A (OG->ID) and by the
    BCA initiator (BG->BD).
    """
    _check_family(family)
    if not is_snake(char):
        raise ValueError(f"cannot convert non-snake character {char}")
    return intern_char(
        family + snake_role(char), char.out_port, char.in_port, char.payload
    )


def _check_family(family: str) -> None:
    if family not in SNAKE_FAMILIES:
        raise ValueError(f"unknown snake family {family!r}")


# ----------------------------------------------------------------------
# alphabet counting (Lemma 5.2 input)
# ----------------------------------------------------------------------
def alphabet_size(delta: int) -> int:
    """Exact size of the processor I/O set ``I`` for degree bound ``delta``.

    Per snake family (paper §2.3): ``delta**2 + delta`` head characters
    (out-port in ``1..delta``, second entry in ``{*} U 1..delta``), the same
    number of body characters, and one tail — ``2*(delta**2 + delta) + 1``.
    The BD tail additionally exists in one payload variant per BCA message.

    Tokens: DFS has the snake-character structure (``delta**2 + delta``
    variants), FORWARD has ``delta**2`` (paper §3.1), BACK/BDONE one each,
    KILL and UNMARK one per scope.  Plus the blank character the paper
    counts as part of the I/O set.
    """
    if delta < 2:
        raise ValueError(f"delta must be >= 2, got {delta}")
    per_family = 2 * (delta**2 + delta) + 1
    snakes = per_family * len(SNAKE_FAMILIES)
    bd_payload_variants = 1  # MSG_DFS_RETURN rides on an extra BD tail char
    dfs = delta**2 + delta
    fwd = delta**2
    back = 1
    bdone = 1
    kill = 2
    unmark = 2
    blank = 1
    return snakes + bd_payload_variants + dfs + fwd + back + bdone + kill + unmark + blank


# ----------------------------------------------------------------------
# the interned alphabet (flat-core backend support)
# ----------------------------------------------------------------------
def enumerate_alphabet(delta: int) -> list[Char]:
    """Every character the protocol can put on a wire, for degree bound ``delta``.

    The enumeration order is deterministic (a pure function of ``delta``),
    so a character's index is stable across processes — the flat-core
    backend uses the index as the character's packed integer code.  The
    list realizes exactly the :func:`alphabet_size` census minus the blank
    character (the blank is the *absence* of a character; the simulator
    never materializes it):

    * per snake family: heads and bodies over ``out_port in 1..delta`` ×
      ``in_port in {*} ∪ 1..delta``, plus the bare tail;
    * the BD tail in its one payload variant (:data:`MSG_DFS_RETURN`);
    * DFS with snake-character structure, FORWARD over ``delta**2`` port
      pairs, BACK and BDONE;
    * KILL and UNMARK, one per scope.
    """
    if delta < 2:
        raise ValueError(f"delta must be >= 2, got {delta}")
    in_ports = (STAR, *range(1, delta + 1))
    chars: list[Char] = []
    for family in SNAKE_FAMILIES:
        for role in (_ROLE_HEAD, _ROLE_BODY):
            for out_port in range(1, delta + 1):
                for in_port in in_ports:
                    chars.append(intern_char(family + role, out_port, in_port))
        chars.append(intern_char(family + _ROLE_TAIL))
    chars.append(intern_char("BD" + _ROLE_TAIL, payload=MSG_DFS_RETURN))
    for out_port in range(1, delta + 1):
        for in_port in in_ports:
            chars.append(intern_char("DFS", out_port, in_port))
    for out_port in range(1, delta + 1):
        for in_port in range(1, delta + 1):
            chars.append(intern_char("FWD", out_port, in_port))
    chars.append(intern_char("BACK"))
    chars.append(intern_char("BDONE"))
    for scope in (SCOPE_RCA, SCOPE_BCA):
        chars.append(intern_char("KILL", payload=scope))
    for scope in (SCOPE_RCA, SCOPE_BCA):
        chars.append(intern_char("UNMARK", payload=scope))
    return chars


class CharInterner:
    """Bijective ``Char`` ↔ integer-code mapping over the constant alphabet.

    Built once per run from :func:`enumerate_alphabet`, so every protocol
    character has a small stable code and a single canonical instance.  The
    flat-core engine stores only codes in its event wheel and hands the
    canonical instance back to handlers — the hot loop allocates no
    characters.

    Characters outside the enumerated alphabet (test doubles inventing
    kinds, scripted drivers with nonstandard payloads) are interned lazily
    on first sight; their codes are appended after the constant alphabet
    and stay stable for the lifetime of the interner.
    """

    __slots__ = ("delta", "chars", "codes", "derived")

    def __init__(self, delta: int) -> None:
        self.delta = delta
        #: code -> canonical instance (also keeps every canonical alive,
        #: which is what makes identity-keyed caches on top of it safe).
        #: Seeded from the *kernel* alphabet — the census plus its closure
        #: under engine fill-in — so interner codes index straight into the
        #: :class:`CharKernel` tables for the same delta.
        self.chars: list[Char] = list(kernel_for(delta).chars)
        #: value -> code
        self.codes: dict[Char, int] = {
            char: code for code, char in enumerate(self.chars)
        }
        #: scratch space for code-indexed tables engines derive from this
        #: interner (packed wheel encode maps, fill variants, ...).  Each
        #: entry must be a pure, append-only function of ``chars``, so every
        #: engine sharing the interner can share one copy instead of
        #: rebuilding it per construction; lifetime is the interner's.
        self.derived: dict[str, object] = {}

    def __len__(self) -> int:
        return len(self.chars)

    def encode(self, char: Char) -> int:
        """The packed integer code of ``char`` (interned on first sight)."""
        code = self.codes.get(char)
        if code is None:
            code = len(self.chars)
            self.chars.append(char)
            self.codes[char] = code
        return code

    def decode(self, code: int) -> Char:
        """The canonical :class:`Char` for ``code``.

        Round-trips with :meth:`encode`: ``decode(encode(c)) == c`` for any
        character, and ``decode(encode(c)) is decode(encode(c))`` — the
        canonical instance is stable, so transcripts and tests can compare
        by value or identity.
        """
        return self.chars[code]


#: delta -> the process-wide shared interner (see :func:`interner_for`).
_INTERNERS: dict[int, CharInterner] = {}


def interner_for(delta: int) -> CharInterner:
    """The process-wide shared :class:`CharInterner` for ``delta``.

    Enumerating the alphabet is O(delta^2) object construction — by far
    the most expensive piece of building a flat engine — and the mapping
    is a pure function of ``delta``, so every engine at the same degree
    bound shares one interner.  Sharing is observation-free: codes are an
    internal address (nothing ordering- or output-relevant ever compares
    them across engines), lazily-interned extras only ever *append*, and
    every engine sizes its code-indexed tables off the live ``chars`` list.
    """
    interner = _INTERNERS.get(delta)
    if interner is None:
        interner = _INTERNERS[delta] = CharInterner(delta)
    return interner


def clear_interner_cache() -> None:
    """Drop the shared interners (tests, cold-cache baselines)."""
    _INTERNERS.clear()
    _KERNELS.clear()


# ----------------------------------------------------------------------
# the compile-time character kernel (code-space hot loop support)
# ----------------------------------------------------------------------
# Every per-hop character operation — predicates, family/role accessors,
# fill-in, conversion — is a pure function on the closed finite alphabet
# of Lemma 5.2, so it can be lowered once into dense ``array('q')`` tables
# indexed by character code.  The flat-core backend then answers every
# character question with one indexed load instead of inspecting a
# :class:`Char` object, and the tables ride the compiled-topology artifact
# (format v2) through the same zero-copy mmap path as the wire tables.

#: Per-code predicate bitmask layout (``char_flags`` table).
KFLAG_SNAKE = 1 << 0
KFLAG_GROWING = 1 << 1
KFLAG_DYING = 1 << 2
KFLAG_HEAD = 1 << 3
KFLAG_BODY = 1 << 4
KFLAG_TAIL = 1 << 5
#: Scope bits are set on KILL/UNMARK tokens (from their payload).
KFLAG_SCOPE_RCA = 1 << 6
KFLAG_SCOPE_BCA = 1 << 7
KFLAG_SPEED3 = 1 << 8
#: Set when the *engine-side* fill-in of §2.3.2 applies: a growing snake
#: or DFS token whose second entry is still ``*`` (see ``char_fill``).
KFLAG_FILLS = 1 << 9
#: The scheduler's in-tick priority, stored in two bits above the flags.
KPRIO_SHIFT = 10
KPRIO_MASK = 0b11


def kernel_alphabet(delta: int) -> list[Char]:
    """The closed code space of the character kernel.

    This is :func:`enumerate_alphabet` (the Lemma 5.2 census minus the
    blank) extended with the 3·delta *filled growing tails* —
    ``IGT/OGT/BGT`` with a concrete in-port — which the engine-side
    fill-in of §2.3.2 produces on delivery but the census does not list
    (the census tail is the bare ``<family>T``).  Closing the set under
    the fill table keeps every table entry a valid code.  The order is
    deterministic: census first (so census codes are unchanged), then the
    filled tails family-major.
    """
    chars = enumerate_alphabet(delta)
    for family in GROWING_FAMILIES:
        for in_port in range(1, delta + 1):
            chars.append(intern_char(family + _ROLE_TAIL, 0, in_port))
    return chars


def kernel_size(delta: int) -> int:
    """Number of codes in :func:`kernel_alphabet` (a pure function of delta)."""
    return alphabet_size(delta) - 1 + 3 * delta


# ----------------------------------------------------------------------
# the transition program (table-walked automaton support)
# ----------------------------------------------------------------------
# The hot protocol automaton — the §2.3.2 growing relay and the §2.3.3
# dying body stream, exactly the transitions the per-node code handlers of
# ``ProtocolProcessor.code_handler_table`` serve — is a finite-state
# machine over a small per-node register file (visited/parent marks per
# growing family, relay pred/succ/promotion per dying family).  Encoding
# each family's register state as a small *phase* integer turns every hot
# delivery into one table row lookup ``(code, in_port, phase) -> row``;
# everything the row cannot express (interceptions, head promotion,
# terminal steps, loop/KILL/UNMARK/DFS tokens, stale shadow state) is an
# *escape* row that falls back to the closure/object handlers, so the
# table can only ever reproduce — never replace — the proven semantics.
#
# Phase encoding, per snake family bank (six banks per node, indexed by
# the :data:`SNAKE_FAMILIES` family index):
#
# * growing banks (IG/OG/BG): ``0`` = unvisited, ``1 + parent_in`` =
#   visited (``1`` = visited with no parent port, which drops every
#   delivery exactly like the closure's ``in_port != None`` inequality),
#   :func:`growing_esc_phase` = intercepted (an active RCA/BCA terminator
#   on this node; every row escapes);
# * dying banks (ID/OD/BD): ``0`` = relay inactive (every row escapes),
#   :func:`dying_phase` = active with a given (pred, succ, promote)
#   register value; promotion pending escapes, otherwise a body arriving
#   through ``pred`` streams straight out of ``succ``.
#
# Row encoding (int64): ``0`` = drop; negative = escape with the *filled*
# code ``-row - 1`` (the fill table is fused in, so the escape path pays
# no second lookup — this also covers DFS fill-in); positive rows decode
# as ``op | next_phase << 3 | emit_port << 19 | emit_code << 25``.

#: row & TRANS_OP_MASK -> what the stepper does with a positive row
TRANS_OP_MASK = 0b111
#: re-broadcast the filled code at tick+3 (§2.3.2 head flood / body pass)
TRANS_OP_BCAST = 1
#: first head at an unvisited node: set the bank to ``next_phase`` (which
#: encodes the new parent), write through to the object-path marks, and
#: broadcast the filled head at tick+3
TRANS_OP_MARK = 2
#: tail at the parent port: append one body per connected out-port at
#: tick+3, then pass the filled tail at tick+4
TRANS_OP_TAIL = 3
#: dying body stream: send the code out of ``emit_port`` at tick+3
TRANS_OP_SEND = 4
TRANS_PHASE_SHIFT = 3
TRANS_PHASE_MASK = 0xFFFF
TRANS_PORT_SHIFT = 19
TRANS_PORT_MASK = 0x3F
TRANS_CODE_SHIFT = 25

#: growing-family indices into :data:`SNAKE_FAMILIES` (IG, OG, BG)
_GROWING_BANKS = (0, 1, 4)


def n_phases(delta: int) -> int:
    """Phases per family bank: growing needs ``delta + 3``, dying
    ``2*delta**2 + 1`` (every (pred, succ, promote) register value)."""
    return max(delta + 3, 2 * delta * delta + 1)


def growing_esc_phase(delta: int) -> int:
    """The growing-bank phase meaning "intercepted — take the cold path"."""
    return delta + 2


def dying_phase(delta: int, pred: int, succ: int, promote: int) -> int:
    """The dying-bank phase for an active relay's register values."""
    return 1 + ((pred - 1) * delta + (succ - 1)) * 2 + promote


class CharKernel:
    """Dense int64 lookup tables over the closed character code space.

    Built once per ``delta`` and shared process-wide (:func:`kernel_for`).
    The eight ``array('q')`` tables are the serializable compile-time
    product (they ride topology artifacts); the plain-list mirrors and the
    derived constructor tables exist because CPython indexes a ``list``
    faster than an ``array`` in the hot loop.

    Serialized tables (``K = kernel_size(delta)`` codes,
    ``P = n_phases(delta)`` phases):

    ``char_flags``     ``K``          predicate bitmask + priority bits
    ``char_family``    ``K``          index into :data:`SNAKE_FAMILIES`, -1
    ``char_role``      ``K``          0=head / 1=body / 2=tail, -1
    ``char_out_port``  ``K``          first port entry (0 when unused)
    ``char_in_port``   ``K``          second port entry (0 = ``*``)
    ``char_fill``      ``K*(delta+1)``  ``(code, in_port) -> code`` fill-in
    ``char_convert``   ``K*6``        ``(code, family index) -> code``, -1
    ``char_trans``     ``K*(delta+1)*P``  ``(code, in_port, phase) -> row``
                       (the transition program; new in artifact format v3)

    The fill table mirrors the *engine's* fill semantics (growing snakes
    and DFS only — dying characters are delivered verbatim, matching
    ``FlatEngine`` and the object backend's §2.3.2 reading), with row 0
    (``in_port == STAR``) the identity.  The convert table re-brands a
    snake code into each target family at the same role/ports/payload;
    entries whose result falls outside the code space are -1.
    """

    __slots__ = (
        "delta",
        "n_codes",
        "chars",
        "codes",
        "char_flags",
        "char_family",
        "char_role",
        "char_out_port",
        "char_in_port",
        "char_fill",
        "char_convert",
        "char_trans",
        "flags_list",
        "family_list",
        "role_list",
        "prio_list",
        "fill_list",
        "fill_rows",
        "convert_list",
        "as_head_list",
        "body_codes",
        "handler_plan",
        "bank_list",
        "trans_rows",
        "trans_walkable",
    )

    def __init__(self, delta: int) -> None:
        self.delta = delta
        chars = kernel_alphabet(delta)
        self.chars: tuple[Char, ...] = tuple(chars)
        self.n_codes = n = len(chars)
        self.codes: dict[Char, int] = {c: i for i, c in enumerate(chars)}
        fam_index = {family: i for i, family in enumerate(SNAKE_FAMILIES)}
        role_index = {_ROLE_HEAD: 0, _ROLE_BODY: 1, _ROLE_TAIL: 2}

        flags = [0] * n
        family = [-1] * n
        role = [-1] * n
        out_port = [0] * n
        in_port = [0] * n
        fill = [0] * (n * (delta + 1))
        conv = [-1] * (n * 6)
        for code, char in enumerate(chars):
            f = 0
            if is_snake(char):
                f |= KFLAG_SNAKE
                fam = snake_family(char)
                family[code] = fam_index[fam]
                role[code] = role_index[snake_role(char)]
                f |= (KFLAG_HEAD, KFLAG_BODY, KFLAG_TAIL)[role[code]]
                if fam in GROWING_FAMILIES:
                    f |= KFLAG_GROWING
                else:
                    f |= KFLAG_DYING
                for target, fi in fam_index.items():
                    got = self.codes.get(
                        Char(
                            target + char.kind[2],
                            char.out_port,
                            char.in_port,
                            char.payload,
                        )
                    )
                    if got is not None:
                        conv[code * 6 + fi] = got
            if char.kind in SPEED3_KINDS:
                f |= KFLAG_SPEED3
                if char.payload == SCOPE_RCA:
                    f |= KFLAG_SCOPE_RCA
                elif char.payload == SCOPE_BCA:
                    f |= KFLAG_SCOPE_BCA
            out_port[code] = char.out_port
            in_port[code] = char.in_port
            fills = char.in_port == STAR and (
                (f & KFLAG_GROWING) or char.kind == "DFS"
            )
            if fills:
                f |= KFLAG_FILLS
            base = code * (delta + 1)
            for j in range(delta + 1):
                if fills and j != STAR:
                    fill[base + j] = self.codes[
                        intern_char(char.kind, char.out_port, j, char.payload)
                    ]
                else:
                    fill[base + j] = code
            prio = (
                0
                if f & KFLAG_SPEED3
                else 1
                if f & KFLAG_DYING
                else 2
                if f & KFLAG_GROWING
                else 3
            )
            flags[code] = f | (prio << KPRIO_SHIFT)

        self.char_flags = array("q", flags)
        self.char_family = array("q", family)
        self.char_role = array("q", role)
        self.char_out_port = array("q", out_port)
        self.char_in_port = array("q", in_port)
        self.char_fill = array("q", fill)
        self.char_convert = array("q", conv)
        # hot-loop mirrors: CPython list indexing beats array indexing
        self.flags_list = flags
        self.family_list = family
        self.role_list = role
        self.prio_list = [f >> KPRIO_SHIFT & KPRIO_MASK for f in flags]
        self.fill_list = fill
        #: the fill table re-sliced per code — two list indexings beat the
        #: flat table's multiply-and-add in the delivery loop
        self.fill_rows = [
            fill[c * (delta + 1) : (c + 1) * (delta + 1)] for c in range(n)
        ]
        self.convert_list = conv
        #: body code -> the same-family head at the same ports (-1 elsewhere);
        #: the dying-relay promotion (head eaten, next body crowned) in one load.
        self.as_head_list = [
            self.codes.get(
                Char(
                    snake_family(c) + _ROLE_HEAD, c.out_port, c.in_port, c.payload
                ),
                -1,
            )
            if is_snake(c) and snake_role(c) == _ROLE_BODY
            else -1
            for c in chars
        ]
        #: family index -> out_port-indexed ``<family>B(port, *)`` codes
        #: (slot 0 unused) — the tail relay's per-port body sends in one load.
        self.body_codes = [
            [-1]
            + [
                self.codes[intern_char(fam + _ROLE_BODY, p)]
                for p in range(1, delta + 1)
            ]
            for fam in SNAKE_FAMILIES
        ]
        #: code -> which code-space handler serves it: the family index for
        #: snakes, then 6 = loop token, 7 = RCA KILL, 8 = BCA KILL,
        #: 9 = RCA UNMARK, -1 = none (object path).  Classified once here so
        #: a processor's per-node handler table is a single list indexing
        #: pass over this plan instead of per-character kind inspection.
        plan = []
        for code, char in enumerate(chars):
            fam = family[code]
            if fam >= 0:
                plan.append(fam)
            elif char.kind in ("FWD", "BACK"):
                plan.append(6)
            elif char.kind == "KILL":
                plan.append(7 if (char.payload or SCOPE_RCA) == SCOPE_RCA else 8)
            elif char.kind == "UNMARK" and char.payload == SCOPE_RCA:
                plan.append(9)
            else:
                plan.append(-1)
        self.handler_plan = plan

        # ---- the transition program (see the module-level row encoding) --
        #: code -> family bank index the stepper reads its phase from.
        #: Non-snake codes borrow bank 0; their rows are all escapes, so
        #: any in-range phase decodes to the same (escape) action.
        self.bank_list = [f if f >= 0 else 0 for f in family]
        P = n_phases(delta)
        esc = growing_esc_phase(delta)
        stride = delta + 1
        trans = [0] * (n * stride * P)
        walkable = bytearray(n)
        for code in range(n):
            fam = family[code]
            for j in range(stride):
                fc = fill[code * stride + j]
                base = (code * stride + j) * P
                escape_row = -(fc + 1)
                trans[base : base + P] = [escape_row] * P
                if fam < 0 or j == STAR:
                    # tokens, and the never-delivered in_port 0 column,
                    # always take the cold path
                    continue
                r = role[fc]
                common = fc << TRANS_CODE_SHIFT
                if fam in _GROWING_BANKS:
                    walkable[code] = 1
                    # phase 0 (unvisited): first head claims the node,
                    # stray bodies/tails are post-KILL debris (D6)
                    trans[base] = (
                        TRANS_OP_MARK | ((1 + j) << TRANS_PHASE_SHIFT) | common
                        if r == 0
                        else 0
                    )
                    # phase 1 (visited, no parent port): nothing matches
                    trans[base + 1] = 0
                    for p in range(1, delta + 1):
                        ph = 1 + p
                        if j != p:
                            row = 0  # off-parent arrivals are ignored
                        elif r == 2:
                            row = TRANS_OP_TAIL | (ph << TRANS_PHASE_SHIFT) | common
                        else:
                            row = TRANS_OP_BCAST | (ph << TRANS_PHASE_SHIFT) | common
                        trans[base + ph] = row
                    assert trans[base + esc] == escape_row  # interception
                elif r == 1:
                    walkable[code] = 1
                    # dying body through the relay's pred port streams out
                    # of succ; every other dying configuration (inactive,
                    # promotion pending, heads/tails, wrong port) escapes
                    for succ in range(1, delta + 1):
                        ph = dying_phase(delta, j, succ, 0)
                        trans[base + ph] = (
                            TRANS_OP_SEND
                            | (ph << TRANS_PHASE_SHIFT)
                            | (succ << TRANS_PORT_SHIFT)
                            | common
                        )
        self.char_trans = array("q", trans)
        #: the transition table re-sliced ``[code][in_port] -> phase row``,
        #: same idiom as ``fill_rows``
        self.trans_rows = [
            [
                trans[(c * stride + j) * P : (c * stride + j + 1) * P]
                for j in range(stride)
            ]
            for c in range(n)
        ]
        #: code -> 1 if at least one ``(in_port, phase)`` row is
        #: table-serviced (set during the build above, where the rows are
        #: written — a test cross-checks it against a full table scan).
        #: Tokens, KILL/UNMARK and dying heads/tails have all-escape
        #: planes: the stepper routes them straight to the closure path
        #: without a register sync or a row read — the escape row would
        #: only rediscover the kernel fill.
        self.trans_walkable = walkable

    def tables(self) -> tuple[array, ...]:
        """The eight serializable tables, in artifact format-v3 order."""
        return (
            self.char_flags,
            self.char_family,
            self.char_role,
            self.char_out_port,
            self.char_in_port,
            self.char_fill,
            self.char_convert,
            self.char_trans,
        )


#: delta -> the process-wide shared kernel (see :func:`kernel_for`).
_KERNELS: dict[int, CharKernel] = {}


def kernel_for(delta: int) -> CharKernel:
    """The process-wide shared :class:`CharKernel` for ``delta``.

    Like :func:`interner_for`, the kernel is a pure function of ``delta``;
    building it is the O(delta^2) part of engine construction, so every
    engine at the same degree bound shares one instance.
    """
    kernel = _KERNELS.get(delta)
    if kernel is None:
        kernel = _KERNELS[delta] = CharKernel(delta)
    return kernel


def clear_kernel_cache() -> None:
    """Drop the shared kernels (tests, cold-cache baselines)."""
    _KERNELS.clear()
